package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The crash/restart harness re-execs this test binary as a real adhocd
// process (TestMain flips into daemon mode when the env var is set), so the
// kill below is a true SIGKILL of a separate process mid-write — not a
// polite in-process cancellation.

const daemonEnv = "ADHOCD_E2E_DAEMON"

func TestMain(m *testing.M) {
	if os.Getenv(daemonEnv) == "1" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// daemon is one spawned adhocd process under test control.
type daemon struct {
	t       *testing.T
	cmd     *exec.Cmd
	stdout  *syncBuffer
	stderr  *syncBuffer
	base    string        // http://host:port
	exited  chan struct{} // closed once the process is reaped
	exitErr error         // cmd.Wait result; read only after exited closes
}

// startDaemon spawns adhocd with a file store over dir and waits for it to
// announce its address.
func startDaemon(t *testing.T, dir string) *daemon {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	d := &daemon{
		t:      t,
		stdout: &syncBuffer{},
		stderr: &syncBuffer{},
		exited: make(chan struct{}),
	}
	d.cmd = exec.Command(exe,
		"-addr", "127.0.0.1:0", "-store", "file", "-data-dir", dir,
		"-scale", "smoke", "-ring", "16384", "-max-jobs", "2")
	d.cmd.Env = append(os.Environ(), daemonEnv+"=1")
	d.cmd.Stdout = d.stdout
	d.cmd.Stderr = d.stderr
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() { d.exitErr = d.cmd.Wait(); close(d.exited) }()
	t.Cleanup(func() {
		d.cmd.Process.Kill()
		<-d.exited
	})

	deadline := time.Now().Add(30 * time.Second)
	for {
		if out := d.stdout.String(); strings.Contains(out, "listening on ") {
			rest := out[strings.Index(out, "listening on ")+len("listening on "):]
			d.base = "http://" + strings.Fields(rest)[0]
			return d
		}
		select {
		case <-d.exited:
			t.Fatalf("daemon exited before listening (%v); stderr %q", d.exitErr, d.stderr.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stdout %q stderr %q", d.stdout.String(), d.stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sigkill hard-kills the daemon — the crash under test — and waits for the
// process to be gone.
func (d *daemon) sigkill() {
	d.t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		d.t.Fatal(err)
	}
	<-d.exited
}

// sigterm asks for the graceful shutdown path and waits it out.
func (d *daemon) sigterm() {
	d.t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		d.t.Fatal(err)
	}
	select {
	case <-d.exited:
	case <-time.After(60 * time.Second):
		d.t.Fatalf("daemon ignored SIGTERM; stdout %q", d.stdout.String())
	}
}

func (d *daemon) get(path string) (int, []byte) {
	d.t.Helper()
	resp, err := http.Get(d.base + path)
	if err != nil {
		d.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		d.t.Fatal(err)
	}
	return resp.StatusCode, body
}

func (d *daemon) post(path, body string) (int, []byte) {
	d.t.Helper()
	resp, err := http.Post(d.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		d.t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		d.t.Fatal(err)
	}
	return resp.StatusCode, out
}

// crashSpec is sized so the SIGKILL reliably lands mid-run: thousands of
// generations (a few seconds of work, one event each) at a pinned seed and
// parallelism 1, so the full event stream is a deterministic artifact.
const crashSpec = `{"scenarios": {"name": "crash-e2e", "environments": [{"csn": 0}],
  "population": 20, "tournament_size": 10, "generations": 6000, "rounds": 10,
  "repetitions": 1, "seed": 11}, "parallelism": 1}`

type daemonJobInfo struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Events    int    `json:"events"`
	EventsURL string `json:"events_url"`
	VerifyURL string `json:"verify_url"`
}

// waitDaemonJob polls the job until cond is satisfied.
func waitDaemonJob(t *testing.T, d *daemon, id string, cond func(daemonJobInfo) bool) daemonJobInfo {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		code, body := d.get("/v1/jobs/" + id)
		if code != http.StatusOK {
			t.Fatalf("status %s: %d %s", id, code, body)
		}
		var info daemonJobInfo
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if cond(info) {
			return info
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached the awaited condition", id)
	return daemonJobInfo{}
}

// TestCrashRestartByteIdentical is the durability tentpole's proof: SIGKILL
// adhocd in the middle of an Evolve job, restart it against the same data
// directory, and demand the resumed job's full NDJSON replay be
// byte-identical to an uninterrupted golden run of the same submission —
// and that the daemon's own verify endpoint agrees.
func TestCrashRestartByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("crash/restart e2e spawns real daemons; skipped in -short")
	}

	// Golden run: the same submission on a daemon nobody kills.
	golden := startDaemon(t, filepath.Join(t.TempDir(), "golden"))
	code, body := golden.post("/v1/jobs", crashSpec)
	if code != http.StatusAccepted {
		t.Fatalf("golden submit: %d %s", code, body)
	}
	var goldenJob daemonJobInfo
	if err := json.Unmarshal(body, &goldenJob); err != nil {
		t.Fatal(err)
	}
	waitDaemonJob(t, golden, goldenJob.ID, func(i daemonJobInfo) bool { return i.State == "done" })
	code, goldenLog := golden.get(goldenJob.EventsURL)
	if code != http.StatusOK || len(goldenLog) == 0 {
		t.Fatalf("golden events: %d (%d bytes)", code, len(goldenLog))
	}
	golden.sigterm()

	// Crash run: same submission, killed mid-flight.
	crashDir := filepath.Join(t.TempDir(), "crash")
	victim := startDaemon(t, crashDir)
	code, body = victim.post("/v1/jobs", crashSpec)
	if code != http.StatusAccepted {
		t.Fatalf("crash submit: %d %s", code, body)
	}
	var crashJob daemonJobInfo
	if err := json.Unmarshal(body, &crashJob); err != nil {
		t.Fatal(err)
	}
	if crashJob.ID != goldenJob.ID {
		t.Fatalf("crash job id %q, golden %q — ids must line up for the byte comparison", crashJob.ID, goldenJob.ID)
	}
	// Let the job get well into its run (hundreds of generation events,
	// several persisted watermarks) before pulling the plug.
	mid := waitDaemonJob(t, victim, crashJob.ID, func(i daemonJobInfo) bool {
		return i.State == "running" && i.Events >= 300
	})
	if mid.State != "running" {
		t.Fatalf("job state %q before kill", mid.State)
	}
	victim.sigkill()

	// Restart over the same directory: the job must come back and re-run.
	revived := startDaemon(t, crashDir)
	deadline := time.Now().Add(30 * time.Second)
	for !strings.Contains(revived.stdout.String(), "resumed 1 unfinished") {
		if time.Now().After(deadline) {
			t.Fatalf("restart did not report the resumed job; stdout %q stderr %q",
				revived.stdout.String(), revived.stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitDaemonJob(t, revived, crashJob.ID, func(i daemonJobInfo) bool { return i.State == "done" })

	// The headline assertion: the replay after the crash is the golden run,
	// byte for byte.
	code, revivedLog := revived.get(crashJob.EventsURL)
	if code != http.StatusOK {
		t.Fatalf("revived events: %d", code)
	}
	if string(revivedLog) != string(goldenLog) {
		t.Fatalf("resumed replay deviates from the uninterrupted golden run at byte %d (golden %d bytes, resumed %d bytes)",
			firstByteDiff(goldenLog, revivedLog), len(goldenLog), len(revivedLog))
	}

	// And the daemon's own verdict concurs: replaying from the persisted
	// (seed, spec) matches the persisted artifacts exactly.
	code, body = verifyWithRetry(t, revived, crashJob.VerifyURL)
	if code != http.StatusOK {
		t.Fatalf("verify: %d %s", code, body)
	}
	var report struct {
		Verdict  string `json:"verdict"`
		Mode     string `json:"mode"`
		EventLog *struct {
			Match            bool `json:"match"`
			DivergenceOffset int  `json:"divergence_offset"`
		} `json:"event_log"`
	}
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatal(err)
	}
	if report.Verdict != "match" || report.Mode != "byte-compare" ||
		report.EventLog == nil || !report.EventLog.Match || report.EventLog.DivergenceOffset != -1 {
		t.Fatalf("verify report %s", body)
	}
	revived.sigterm()
}

// verifyWithRetry POSTs the verify endpoint, allowing the watcher a moment
// to persist the just-finished job's terminal record (409 while pending).
func verifyWithRetry(t *testing.T, d *daemon, url string) (int, []byte) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, body := d.post(url, "")
		if code != http.StatusConflict || time.Now().After(deadline) {
			return code, body
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func firstByteDiff(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestDaemonStoreFlagValidation pins the new flags' failure modes.
func TestDaemonStoreFlagValidation(t *testing.T) {
	var stdout, stderr syncBuffer
	if code := run(context.Background(), []string{"-store", "redis"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad store backend: exit %d", code)
	}
	if !strings.Contains(stderr.String(), "mem or file") {
		t.Errorf("stderr %q", stderr.String())
	}
	// A data dir that cannot be created is a startup error, not a panic.
	stderr = syncBuffer{}
	dir := filepath.Join(t.TempDir(), "blocked")
	if err := os.WriteFile(dir, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run(context.Background(), []string{"-store", "file", "-data-dir", filepath.Join(dir, "sub")}, &stdout, &stderr); code != 1 {
		t.Errorf("unusable data dir: exit %d (stderr %q)", code, stderr.String())
	}
}
