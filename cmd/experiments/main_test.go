package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// End-to-end smoke tests for the experiments harness: each artifact path
// runs at a tiny budget and the output byte-compares across identical
// invocations at a fixed seed.

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestFig4ByteIdenticalAtFixedSeed(t *testing.T) {
	args := []string{"-only", "fig4", "-generations", "2", "-rounds", "10", "-reps", "1", "-seed", "9", "-q"}
	code1, out1, err1 := runCLI(t, args...)
	if code1 != 0 {
		t.Fatalf("exit %d, stderr: %s", code1, err1)
	}
	code2, out2, _ := runCLI(t, args...)
	if code2 != 0 {
		t.Fatalf("second run exit %d", code2)
	}
	if out1 != out2 {
		t.Errorf("fixed-seed output differs between runs:\n--- first\n%s\n--- second\n%s", out1, out2)
	}
	if !strings.Contains(out1, "Fig 4") && !strings.Contains(out1, "fig 4") && !strings.Contains(out1, "cooperation") {
		t.Errorf("fig4 output looks empty:\n%s", out1)
	}
}

func TestTablesArtifactRuns(t *testing.T) {
	code, out, errOut := runCLI(t, "-only", "table5,table6",
		"-generations", "2", "-rounds", "10", "-reps", "1", "-seed", "11", "-q")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "Table 5") && !strings.Contains(out, "table 5") {
		t.Errorf("table5 output missing:\n%s", out)
	}
}

func TestChurnAndAdversaryArtifactsEndToEnd(t *testing.T) {
	args := []string{"-only", "churn,adversaries",
		"-generations", "6", "-rounds", "10", "-reps", "1", "-seed", "5", "-q"}
	code, out, errOut := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{
		"cooperation under churn",
		"recovery after churn",
		"cooperation vs Byzantine adversary fraction",
		"adversaries liars x10",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Determinism of the new artifacts, byte for byte.
	_, again, _ := runCLI(t, args...)
	if out != again {
		t.Error("churn/adversary artifacts differ between identical runs")
	}
}

func TestMarkdownMode(t *testing.T) {
	code, out, errOut := runCLI(t, "-only", "churn", "-markdown",
		"-generations", "6", "-rounds", "10", "-reps", "1", "-q")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "|") {
		t.Errorf("markdown mode produced no tables:\n%s", out)
	}
}

func TestHelpExitsZero(t *testing.T) {
	code, _, errOut := runCLI(t, "-h")
	if code != 0 {
		t.Errorf("-h exit %d, want 0", code)
	}
	if !strings.Contains(errOut, "-only") {
		t.Errorf("usage text missing from stderr:\n%s", errOut)
	}
}

func TestBadFlagsRejected(t *testing.T) {
	cases := []struct {
		args []string
		frag string
	}{
		{[]string{"-scale", "enormous"}, "unknown scale"},
		{[]string{"-only", "nonsense"}, "nothing to do"},
		{[]string{"-reps", "-1"}, "must be >= 1"},
		{[]string{"-generations", "-5"}, "must be >= 1"},
		// -json only covers the paper cases; a dynamics-only invocation
		// must refuse rather than silently skip the file.
		{[]string{"-only", "churn", "-json", "/tmp/x.json"}, "-json covers the paper cases"},
	}
	for _, tc := range cases {
		code, _, errOut := runCLI(t, tc.args...)
		if code != 2 {
			t.Errorf("args %v: exit %d, want 2", tc.args, code)
			continue
		}
		if !strings.Contains(errOut, tc.frag) {
			t.Errorf("args %v: stderr %q missing %q", tc.args, errOut, tc.frag)
		}
	}
}

// TestInterruptEmitsPartialSeries pins the SIGINT behavior: a cancelled
// batch exits 130 with the interruption marker instead of dying mid-write.
func TestInterruptEmitsPartialSeries(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	var stdout, stderr bytes.Buffer
	code := run(ctx, []string{"-only", "fig4", "-generations", "1000000", "-rounds", "10",
		"-reps", "1", "-seed", "8", "-q"}, &stdout, &stderr)
	if code != interruptedExit {
		t.Fatalf("exit %d, want %d (stderr: %s)", code, interruptedExit, stderr.String())
	}
	if !strings.Contains(stdout.String(), "interrupted") {
		t.Errorf("stdout missing the interruption marker:\n%s", stdout.String())
	}
}
