// Command experiments regenerates every table and figure of the paper's
// evaluation section at a chosen scale, printing paper-vs-measured tables,
// plus the dynamics extension's churn-recovery and adversary tables.
//
// Usage:
//
//	experiments -scale default            # all paper tables, minutes
//	experiments -scale smoke -only fig4   # quick single artifact
//	experiments -scale paper -par 24      # the full 60-repetition run
//	experiments -only churn               # churn-sweep family + recovery tables
//	experiments -only adversaries         # adversary-grid family
//	experiments -markdown > results.md
//
// Fig 4 needs cases 1–4; Tables 5–9 need cases 3 and 4. The "churn" and
// "adversaries" artifacts run the churn-sweep and adversary-grid scenario
// families (internal/scenario) and render the recovery-after-churn and
// cooperation-vs-adversary-fraction tables; they are opt-in (not part of
// "all") because they answer questions beyond the paper. The harness runs
// exactly the scenarios the requested artifacts need, batched over one
// shared worker pool so replicates interleave and no cores idle.
//
// -generations/-rounds/-reps, when set, override the scale preset — handy
// for quick spot checks and used by the CLI smoke tests.
//
// Every batch runs as one job on a Session (package adhocga), so
// SIGINT/SIGTERM interrupt gracefully: replicates stop at their next
// generation barrier and the partial cooperation series collected so far
// is printed with an "interrupted at generation N" marker (exit 130)
// instead of dying mid-write.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"adhocga"
	"adhocga/internal/experiment"
	"adhocga/internal/report"
	"adhocga/internal/scenario"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// interruptedExit is the exit code of a SIGINT-cancelled run (128+SIGINT).
const interruptedExit = 130

// run is the whole CLI behind a testable seam (own FlagSet, explicit
// writers) so smoke tests can replay invocations and byte-compare output.
// Cancelling ctx stops the running batch at its next generation barrier.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scaleName   = fs.String("scale", "default", "scale preset: smoke, default, or paper")
		only        = fs.String("only", "all", "comma list of artifacts: fig4,table5,table6,table7,table8,table9,churn,adversaries or all")
		generations = fs.Int("generations", 0, "override the scale's generations per replication (0 = preset)")
		rounds      = fs.Int("rounds", 0, "override the scale's rounds per tournament (0 = preset)")
		reps        = fs.Int("reps", 0, "override the scale's replications (0 = preset)")
		seed        = fs.Uint64("seed", 2007, "master seed")
		par         = fs.Int("par", 0, "worker pool size (0 = all cores)")
		markdown    = fs.Bool("markdown", false, "emit Markdown tables instead of plain text")
		jsonPath    = fs.String("json", "", "also write raw results as JSON to this file")
		quiet       = fs.Bool("q", false, "suppress progress output")
		islands     = fs.Bool("islands", false, "run the cases on the island-model engine (table4-islands: population 200 over a 4-island ring)")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if *generations < 0 || *rounds < 0 || *reps < 0 {
		fmt.Fprintln(stderr, "experiments: -generations/-rounds/-reps must be >= 1 when set")
		return 2
	}

	sc, err := experiment.ScaleByName(*scaleName)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *generations > 0 {
		sc.Generations = *generations
	}
	if *rounds > 0 {
		sc.Rounds = *rounds
	}
	if *reps > 0 {
		sc.Repetitions = *reps
	}

	want := map[string]bool{}
	for _, a := range strings.Split(*only, ",") {
		want[strings.TrimSpace(strings.ToLower(a))] = true
	}
	all := want["all"]
	needCase := map[int]bool{}
	if all || want["fig4"] {
		needCase[1], needCase[2], needCase[3], needCase[4] = true, true, true, true
	}
	if all || want["table5"] || want["table6"] || want["table7"] || want["table8"] || want["table9"] {
		needCase[3] = true
		needCase[4] = true
	}
	wantChurn := want["churn"]
	wantAdv := want["adversaries"] || want["adversary"]
	if len(needCase) == 0 && !wantChurn && !wantAdv {
		fmt.Fprintf(stderr, "nothing to do for -only=%s\n", *only)
		return 2
	}
	// WriteJSON covers the paper cases only; refuse up front rather than
	// exit 0 having silently skipped the user's requested artifact.
	if *jsonPath != "" && len(needCase) == 0 {
		fmt.Fprintln(stderr, "experiments: -json covers the paper cases; add fig4 or a table to -only")
		return 2
	}

	render := func(t *report.Table) string {
		if *markdown {
			return t.Markdown()
		}
		return t.Render()
	}

	// One Session per invocation: each artifact batch is a job on its
	// shared pool, interruptible at generation barriers.
	session := adhocga.NewSession(adhocga.WithPoolSize(*par))
	defer session.Close()

	// runBatch submits one scenario batch as a job and consumes its event
	// stream: replicate completions drive the progress line, generation
	// events feed the partial view printed if the run is interrupted. The
	// int is an exit code, or -1 to continue.
	runBatch := func(runs []experiment.ScenarioRun, names []string) ([]*experiment.CaseResult, int) {
		job, err := session.Submit(ctx, adhocga.ScenariosSpec{
			Runs: runs, Defaults: sc,
			Opts: experiment.Options{Seed: *seed, Parallelism: *par},
		})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return nil, 1
		}
		var partial adhocga.PartialSeries
		for e := range job.Events() {
			switch e.Kind {
			case adhocga.KindReplicate:
				if !*quiet {
					fmt.Fprintf(stderr, "\r%d/%d replications", e.Replicate.Done, e.Replicate.Total)
					if e.Replicate.Done == e.Replicate.Total {
						fmt.Fprintln(stderr)
					}
				}
			default:
				partial.Add(e)
			}
		}
		if err := job.Wait(context.Background()); err != nil {
			if job.State() == adhocga.JobCancelled {
				if !*quiet {
					fmt.Fprintln(stderr)
				}
				adhocga.RenderInterrupted(stdout, &partial, names)
				return nil, interruptedExit
			}
			fmt.Fprintln(stderr, err)
			return nil, 1
		}
		results, _ := job.Result().([]*experiment.CaseResult)
		return results, -1
	}

	// One batch over a single shared worker pool. Per-case seeds match
	// the old per-case runs (seed + id), so the numbers are unchanged;
	// only the scheduling is denser.
	if len(needCase) > 0 {
		specs := scenario.Table4()
		if *islands {
			specs = scenario.Table4Islands()
		}
		var runs []experiment.ScenarioRun
		for _, spec := range specs {
			if !needCase[spec.ID] {
				continue
			}
			runs = append(runs, experiment.ScenarioRun{Spec: spec, Seed: *seed + uint64(spec.ID)})
		}
		// Seed doubles as the batch fallback so a wrapped per-case seed
		// of 0 still derives deterministically from the invocation seed.
		if !*quiet {
			for _, r := range runs {
				fmt.Fprintf(stderr, "queued %s at scale %q (%d generations × %d reps)\n",
					r.Spec.Name, sc.Name, sc.Generations, sc.Repetitions)
			}
		}
		names := make([]string, len(runs))
		for i, r := range runs {
			names[i] = r.Spec.Name
		}
		resList, code := runBatch(runs, names)
		if code >= 0 {
			return code
		}
		results := map[int]*experiment.CaseResult{}
		for i, res := range resList {
			results[runs[i].Spec.ID] = res
		}

		if *jsonPath != "" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			if err := experiment.WriteJSON(f, results, 10); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		}

		if all || want["fig4"] {
			fmt.Fprintln(stdout, experiment.Fig4Chart(results))
			fmt.Fprintln(stdout, render(experiment.Fig4Table(results)))
		}
		if all || want["table5"] {
			fmt.Fprintln(stdout, render(experiment.Table5(results[3], results[4])))
		}
		if all || want["table6"] {
			fmt.Fprintln(stdout, render(experiment.Table6(results[3], results[4])))
		}
		if all || want["table7"] {
			fmt.Fprintln(stdout, render(experiment.Table7(results[3], results[4])))
		}
		if all || want["table8"] {
			fmt.Fprintln(stdout, render(experiment.Table8(results[3])))
		}
		if all || want["table9"] {
			fmt.Fprintln(stdout, render(experiment.Table9(results[4])))
		}
		for id := 1; id <= 4; id++ {
			if res := results[id]; res != nil && res.Islands != nil {
				fmt.Fprintln(stdout, render(experiment.IslandTable(res)))
			}
		}
	}

	// The dynamics artifacts run their scenario families end to end and
	// render the extension tables.
	runFamily := func(name string) ([]*experiment.CaseResult, int) {
		fam, err := scenario.FamilyByName(name)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return nil, 1
		}
		var runs []experiment.ScenarioRun
		var names []string
		for _, spec := range fam.Specs() {
			runs = append(runs, experiment.ScenarioRun{Spec: spec})
			names = append(names, spec.Name)
		}
		return runBatch(runs, names)
	}
	if wantChurn {
		results, code := runFamily("churn-sweep")
		if code >= 0 {
			return code
		}
		fmt.Fprintln(stdout, render(experiment.ChurnSweepTable(results)))
		for _, res := range results {
			if t := experiment.RecoveryTable(res); t != nil {
				fmt.Fprintln(stdout, render(t))
			}
		}
	}
	if wantAdv {
		results, code := runFamily("adversary-grid")
		if code >= 0 {
			return code
		}
		fmt.Fprintln(stdout, render(experiment.AdversaryTable(results)))
	}
	return 0
}
