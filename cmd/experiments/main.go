// Command experiments regenerates every table and figure of the paper's
// evaluation section at a chosen scale, printing paper-vs-measured tables.
//
// Usage:
//
//	experiments -scale default            # all tables, minutes
//	experiments -scale smoke -only fig4   # quick single artifact
//	experiments -scale paper -par 24      # the full 60-repetition run
//	experiments -markdown > results.md
//
// Fig 4 needs cases 1–4; Tables 5–9 need cases 3 and 4. The harness runs
// exactly the cases the requested artifacts need, batched over one shared
// worker pool so replicates of different cases interleave and no cores
// idle between cases.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"adhocga/internal/experiment"
	"adhocga/internal/report"
	"adhocga/internal/scenario"
)

func main() {
	var (
		scaleName = flag.String("scale", "default", "scale preset: smoke, default, or paper")
		only      = flag.String("only", "all", "comma list of artifacts: fig4,table5,table6,table7,table8,table9 or all")
		seed      = flag.Uint64("seed", 2007, "master seed")
		par       = flag.Int("par", 0, "worker pool size (0 = all cores)")
		markdown  = flag.Bool("markdown", false, "emit Markdown tables instead of plain text")
		jsonPath  = flag.String("json", "", "also write raw results as JSON to this file")
		quiet     = flag.Bool("q", false, "suppress progress output")
		islands   = flag.Bool("islands", false, "run the cases on the island-model engine (table4-islands: population 200 over a 4-island ring)")
	)
	flag.Parse()

	sc, err := experiment.ScaleByName(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, a := range strings.Split(*only, ",") {
		want[strings.TrimSpace(strings.ToLower(a))] = true
	}
	all := want["all"]
	needCase := map[int]bool{}
	if all || want["fig4"] {
		needCase[1], needCase[2], needCase[3], needCase[4] = true, true, true, true
	}
	if all || want["table5"] || want["table6"] || want["table7"] || want["table8"] || want["table9"] {
		needCase[3] = true
		needCase[4] = true
	}
	if len(needCase) == 0 {
		fmt.Fprintf(os.Stderr, "nothing to do for -only=%s\n", *only)
		os.Exit(2)
	}

	// One batch over a single shared worker pool. Per-case seeds match
	// the old per-case runs (seed + id), so the numbers are unchanged;
	// only the scheduling is denser.
	specs := scenario.Table4()
	if *islands {
		specs = scenario.Table4Islands()
	}
	var runs []experiment.ScenarioRun
	for _, spec := range specs {
		if !needCase[spec.ID] {
			continue
		}
		runs = append(runs, experiment.ScenarioRun{Spec: spec, Seed: *seed + uint64(spec.ID)})
	}
	// Seed doubles as the batch fallback so a wrapped per-case seed of 0
	// still derives deterministically from the invocation seed.
	opts := experiment.Options{Seed: *seed, Parallelism: *par}
	if !*quiet {
		for _, r := range runs {
			fmt.Fprintf(os.Stderr, "queued %s at scale %q (%d generations × %d reps)\n",
				r.Spec.Name, sc.Name, sc.Generations, sc.Repetitions)
		}
		opts.OnReplicate = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d replications", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	resList, err := experiment.RunScenarios(runs, sc, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	results := map[int]*experiment.CaseResult{}
	for i, res := range resList {
		results[runs[i].Spec.ID] = res
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := experiment.WriteJSON(f, results, 10); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	render := func(t *report.Table) string {
		if *markdown {
			return t.Markdown()
		}
		return t.Render()
	}
	if all || want["fig4"] {
		fmt.Println(experiment.Fig4Chart(results))
		fmt.Println(render(experiment.Fig4Table(results)))
	}
	if all || want["table5"] {
		fmt.Println(render(experiment.Table5(results[3], results[4])))
	}
	if all || want["table6"] {
		fmt.Println(render(experiment.Table6(results[3], results[4])))
	}
	if all || want["table7"] {
		fmt.Println(render(experiment.Table7(results[3], results[4])))
	}
	if all || want["table8"] {
		fmt.Println(render(experiment.Table8(results[3])))
	}
	if all || want["table9"] {
		fmt.Println(render(experiment.Table9(results[4])))
	}
	for id := 1; id <= 4; id++ {
		if res := results[id]; res != nil && res.Islands != nil {
			fmt.Println(render(experiment.IslandTable(res)))
		}
	}
}
