// Command adhocsim runs a one-off ad hoc network tournament with a fixed
// (non-evolved) population mix and reports delivery rates, fitness, and
// forwarding behavior per group — the quickest way to poke at the game
// model without running the GA.
//
// Usage:
//
//	adhocsim -mix all-cooperate:30,trust>=1:10 -csn 10 -rounds 300
//	adhocsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"adhocga/internal/baselines"
	"adhocga/internal/energy"
	"adhocga/internal/game"
	"adhocga/internal/network"
	"adhocga/internal/report"
	"adhocga/internal/strategy"
	"adhocga/internal/tournament"
)

func main() {
	var (
		mix        = flag.String("mix", "trust>=1:40", "comma-separated profile:count pairs (profile may also be a 13-bit strategy)")
		csn        = flag.Int("csn", 10, "constantly selfish nodes")
		rounds     = flag.Int("rounds", 300, "tournament rounds")
		mode       = flag.String("mode", "SP", "path mode: SP or LP")
		seed       = flag.Uint64("seed", 1, "seed")
		randomPath = flag.Bool("random-path", false, "choose routes uniformly instead of by reputation")
		showEnergy = flag.Bool("energy", false, "report radio energy spending per node class")
		gossip     = flag.Int("gossip", 0, "exchange second-hand reputation every N rounds (0 = off)")
		list       = flag.Bool("list", false, "list built-in profiles and exit")
	)
	flag.Parse()

	if *list {
		t := report.NewTable("built-in profiles", "name", "strategy")
		for _, p := range baselines.StandardProfiles() {
			t.AddRow(p.Name, p.Strategy.String())
		}
		fmt.Print(t.Render())
		return
	}

	groups, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pathMode := network.ShorterPaths()
	if strings.EqualFold(*mode, "LP") {
		pathMode = network.LongerPaths()
	}
	cfg := baselines.MixConfig{
		Groups: groups,
		CSN:    *csn,
		Rounds: *rounds,
		Mode:   pathMode,
		Game:   game.DefaultConfig(),
		Seed:   *seed,
	}
	if *randomPath {
		cfg.PathChoice = tournament.RandomPath
	}
	// CORE-style gossip defaults (positive reports only, modest
	// credibility) are applied inside RunMix when the interval is set.
	cfg.GossipInterval = *gossip
	var meter *energy.Meter
	if *showEnergy {
		var err error
		meter, err = energy.NewMeter(energy.DefaultCosts())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Recorder = meter
	}
	res, err := baselines.RunMix(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("cooperation level (normal-originated delivery): %s\n", report.Percent(res.Cooperation))
	if *csn > 0 {
		fmt.Printf("CSN delivery rate: %s\n", report.Percent(res.CSNDelivery))
	}
	t := report.NewTable("\nper-group outcomes", "group", "delivery", "fitness", "forward share")
	for _, g := range res.Groups {
		t.AddRow(g.Name, report.Percent(g.DeliveryRate),
			report.FormatFloat(g.Fitness), report.Percent(g.ForwardShare))
	}
	fmt.Print(t.Render())

	if meter != nil {
		n, s := meter.ByType()
		et := report.NewTable("\nradio energy (arbitrary units)", "class", "nodes", "mean spent")
		et.AddRow("normal", fmt.Sprint(n.Nodes), report.FormatFloat(n.MeanEnergy))
		if s.Nodes > 0 {
			et.AddRow("selfish", fmt.Sprint(s.Nodes), report.FormatFloat(s.MeanEnergy))
		}
		fmt.Print(et.Render())
	}
}

// parseMix parses "name:count,name:count". A name that is not a built-in
// profile is parsed as a 13-bit strategy string.
func parseMix(s string) ([]baselines.Group, error) {
	var groups []baselines.Group
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		idx := strings.LastIndex(part, ":")
		if idx < 0 {
			return nil, fmt.Errorf("mix entry %q is not profile:count", part)
		}
		name, countStr := part[:idx], part[idx+1:]
		count, err := strconv.Atoi(countStr)
		if err != nil {
			return nil, fmt.Errorf("mix entry %q: bad count: %v", part, err)
		}
		profile, err := baselines.ProfileByName(name)
		if err != nil {
			st, perr := strategy.Parse(name)
			if perr != nil {
				return nil, fmt.Errorf("mix entry %q: not a profile (%v) nor a strategy (%v)", part, err, perr)
			}
			profile = baselines.Profile{Name: name, Strategy: st}
		}
		groups = append(groups, baselines.Group{Profile: profile, Count: count})
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	return groups, nil
}
