// Command adhocsim runs a one-off ad hoc network tournament with a fixed
// (non-evolved) population mix and reports delivery rates, fitness, and
// forwarding behavior per group — the quickest way to poke at the game
// model without running the GA.
//
// Usage:
//
//	adhocsim -mix all-cooperate:30,trust>=1:10 -csn 10 -rounds 300
//	adhocsim -mix all-cooperate:30 -scenario spec.json
//	adhocsim -list
//
// With -scenario, the tournament's rounds, path mode, and CSN count
// default to the scenario's values (its first environment); explicit
// flags still win. The argument must resolve to exactly one scenario.
//
// The tournament runs as a mix job on a Session (package adhocga), the
// same API adhocd serves; SIGINT before the tournament starts aborts
// cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"adhocga"
	"adhocga/internal/baselines"
	"adhocga/internal/energy"
	"adhocga/internal/game"
	"adhocga/internal/network"
	"adhocga/internal/report"
	"adhocga/internal/scenario"
	"adhocga/internal/strategy"
	"adhocga/internal/tournament"
)

func main() {
	var (
		mix         = flag.String("mix", "trust>=1:40", "comma-separated profile:count pairs (profile may also be a 13-bit strategy)")
		csn         = flag.Int("csn", 10, "constantly selfish nodes")
		rounds      = flag.Int("rounds", 300, "tournament rounds")
		mode        = flag.String("mode", "SP", "path mode: SP or LP")
		scenarioArg = flag.String("scenario", "", "scenario (JSON file, family, or name) supplying csn/rounds/mode defaults")
		seed        = flag.Uint64("seed", 1, "seed")
		randomPath  = flag.Bool("random-path", false, "choose routes uniformly instead of by reputation")
		showEnergy  = flag.Bool("energy", false, "report radio energy spending per node class")
		gossip      = flag.Int("gossip", 0, "exchange second-hand reputation every N rounds (0 = off)")
		list        = flag.Bool("list", false, "list built-in profiles and exit")
	)
	flag.Parse()

	if *list {
		t := report.NewTable("built-in profiles", "name", "strategy")
		for _, p := range baselines.StandardProfiles() {
			t.AddRow(p.Name, p.Strategy.String())
		}
		fmt.Print(t.Render())
		return
	}

	if *scenarioArg != "" {
		if err := applyScenario(*scenarioArg, csn, rounds, mode); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	groups, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pathMode := network.ShorterPaths()
	if strings.EqualFold(*mode, "LP") {
		pathMode = network.LongerPaths()
	}
	cfg := baselines.MixConfig{
		Groups: groups,
		CSN:    *csn,
		Rounds: *rounds,
		Mode:   pathMode,
		Game:   game.DefaultConfig(),
		Seed:   *seed,
	}
	if *randomPath {
		cfg.PathChoice = tournament.RandomPath
	}
	// CORE-style gossip defaults (positive reports only, modest
	// credibility) are applied inside RunMix when the interval is set.
	cfg.GossipInterval = *gossip
	var meter *energy.Meter
	if *showEnergy {
		var err error
		meter, err = energy.NewMeter(energy.DefaultCosts())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Recorder = meter
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	session := adhocga.NewSession(adhocga.WithPoolSize(1))
	defer session.Close()
	res, err := session.RunMix(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("cooperation level (normal-originated delivery): %s\n", report.Percent(res.Cooperation))
	if *csn > 0 {
		fmt.Printf("CSN delivery rate: %s\n", report.Percent(res.CSNDelivery))
	}
	t := report.NewTable("\nper-group outcomes", "group", "delivery", "fitness", "forward share")
	for _, g := range res.Groups {
		t.AddRow(g.Name, report.Percent(g.DeliveryRate),
			report.FormatFloat(g.Fitness), report.Percent(g.ForwardShare))
	}
	fmt.Print(t.Render())

	if meter != nil {
		n, s := meter.ByType()
		et := report.NewTable("\nradio energy (arbitrary units)", "class", "nodes", "mean spent")
		et.AddRow("normal", fmt.Sprint(n.Nodes), report.FormatFloat(n.MeanEnergy))
		if s.Nodes > 0 {
			et.AddRow("selfish", fmt.Sprint(s.Nodes), report.FormatFloat(s.MeanEnergy))
		}
		fmt.Print(et.Render())
	}
}

// applyScenario overwrites the csn/rounds/mode defaults with the first
// loaded scenario's values wherever the user did not set the flag
// explicitly on the command line.
func applyScenario(arg string, csn, rounds *int, mode *string) error {
	specs, err := scenario.FromArg(arg)
	if err != nil {
		return err
	}
	if len(specs) != 1 {
		return fmt.Errorf("adhocsim: -scenario %q resolves to %d scenarios, need exactly one", arg, len(specs))
	}
	spec := specs[0]
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if !set["csn"] {
		*csn = spec.Environments[0].CSN
	}
	if !set["rounds"] && spec.Rounds > 0 {
		*rounds = spec.Rounds
	}
	if !set["mode"] {
		m, err := spec.Mode()
		if err != nil {
			return err
		}
		*mode = m.Name
	}
	return nil
}

// parseMix parses "name:count,name:count". A name that is not a built-in
// profile is parsed as a 13-bit strategy string.
func parseMix(s string) ([]baselines.Group, error) {
	var groups []baselines.Group
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		idx := strings.LastIndex(part, ":")
		if idx < 0 {
			return nil, fmt.Errorf("mix entry %q is not profile:count", part)
		}
		name, countStr := part[:idx], part[idx+1:]
		count, err := strconv.Atoi(countStr)
		if err != nil {
			return nil, fmt.Errorf("mix entry %q: bad count: %v", part, err)
		}
		profile, err := baselines.ProfileByName(name)
		if err != nil {
			st, perr := strategy.Parse(name)
			if perr != nil {
				return nil, fmt.Errorf("mix entry %q: not a profile (%v) nor a strategy (%v)", part, err, perr)
			}
			profile = baselines.Profile{Name: name, Strategy: st}
		}
		groups = append(groups, baselines.Group{Profile: profile, Count: count})
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	return groups, nil
}
