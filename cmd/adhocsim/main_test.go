package main

import (
	"testing"
)

func TestParseMixProfiles(t *testing.T) {
	groups, err := parseMix("all-cooperate:10,trust>=1:5")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("%d groups", len(groups))
	}
	if groups[0].Profile.Name != "all-cooperate" || groups[0].Count != 10 {
		t.Errorf("group 0 = %+v", groups[0])
	}
	if groups[1].Profile.Name != "trust>=1" || groups[1].Count != 5 {
		t.Errorf("group 1 = %+v", groups[1])
	}
}

func TestParseMixRawStrategy(t *testing.T) {
	groups, err := parseMix("0101011011111:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || groups[0].Count != 3 {
		t.Fatalf("groups = %+v", groups)
	}
	if groups[0].Profile.Strategy.String() != "010 101 101 111 1" {
		t.Errorf("strategy = %s", groups[0].Profile.Strategy)
	}
}

func TestParseMixToleratesSpacesAndEmpties(t *testing.T) {
	groups, err := parseMix(" all-defect:2 , ,")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || groups[0].Profile.Name != "all-defect" {
		t.Errorf("groups = %+v", groups)
	}
}

func TestParseMixErrors(t *testing.T) {
	cases := []string{
		"",                // empty
		"all-cooperate",   // no count
		"all-cooperate:x", // bad count
		"nonsense:3",      // neither profile nor strategy
		"01010:3",         // wrong strategy length
	}
	for _, s := range cases {
		if _, err := parseMix(s); err == nil {
			t.Errorf("parseMix(%q) succeeded, want error", s)
		}
	}
}

// The profile name containing ':' must still parse because we split on the
// LAST colon.
func TestParseMixColonInName(t *testing.T) {
	groups, err := parseMix("trust>=2:4")
	if err != nil {
		t.Fatal(err)
	}
	if groups[0].Profile.Name != "trust>=2" || groups[0].Count != 4 {
		t.Errorf("groups = %+v", groups)
	}
}
