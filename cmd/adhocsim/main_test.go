package main

import (
	"testing"
)

func TestParseMixProfiles(t *testing.T) {
	groups, err := parseMix("all-cooperate:10,trust>=1:5")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("%d groups", len(groups))
	}
	if groups[0].Profile.Name != "all-cooperate" || groups[0].Count != 10 {
		t.Errorf("group 0 = %+v", groups[0])
	}
	if groups[1].Profile.Name != "trust>=1" || groups[1].Count != 5 {
		t.Errorf("group 1 = %+v", groups[1])
	}
}

func TestParseMixRawStrategy(t *testing.T) {
	groups, err := parseMix("0101011011111:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || groups[0].Count != 3 {
		t.Fatalf("groups = %+v", groups)
	}
	if groups[0].Profile.Strategy.String() != "010 101 101 111 1" {
		t.Errorf("strategy = %s", groups[0].Profile.Strategy)
	}
}

func TestParseMixToleratesSpacesAndEmpties(t *testing.T) {
	groups, err := parseMix(" all-defect:2 , ,")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || groups[0].Profile.Name != "all-defect" {
		t.Errorf("groups = %+v", groups)
	}
}

func TestParseMixErrors(t *testing.T) {
	cases := []string{
		"",                // empty
		"all-cooperate",   // no count
		"all-cooperate:x", // bad count
		"nonsense:3",      // neither profile nor strategy
		"01010:3",         // wrong strategy length
	}
	for _, s := range cases {
		if _, err := parseMix(s); err == nil {
			t.Errorf("parseMix(%q) succeeded, want error", s)
		}
	}
}

// The profile name containing ':' must still parse because we split on the
// LAST colon.
func TestParseMixColonInName(t *testing.T) {
	groups, err := parseMix("trust>=2:4")
	if err != nil {
		t.Fatal(err)
	}
	if groups[0].Profile.Name != "trust>=2" || groups[0].Count != 4 {
		t.Errorf("groups = %+v", groups)
	}
}

func TestApplyScenarioDefaults(t *testing.T) {
	// Unset flags pick up the scenario's values; note case 4 is LP with
	// TE1 (0 CSN) first.
	csn, rounds, mode := 10, 300, "SP"
	if err := applyScenario("case 4 (TE1-4, LP)", &csn, &rounds, &mode); err != nil {
		t.Fatal(err)
	}
	if csn != 0 || mode != "LP" {
		t.Errorf("csn=%d mode=%q, want scenario defaults 0/LP", csn, mode)
	}
	// The table4 specs leave rounds to the run scale, so the flag default
	// must survive.
	if rounds != 300 {
		t.Errorf("rounds=%d, want flag default 300", rounds)
	}
	if err := applyScenario("no such scenario anywhere", &csn, &rounds, &mode); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := applyScenario("table4", &csn, &rounds, &mode); err == nil {
		t.Error("multi-scenario family accepted; adhocsim needs exactly one")
	}
}
