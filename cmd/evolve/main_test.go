package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// End-to-end smoke tests: run the binary's whole main path (flag parsing,
// experiment execution, report rendering) at a tiny budget and check the
// output is deterministic byte for byte at a fixed seed.

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestRunCaseByteIdenticalAtFixedSeed(t *testing.T) {
	args := []string{"-case", "1", "-generations", "2", "-rounds", "10", "-reps", "2", "-seed", "7", "-q"}
	code1, out1, err1 := runCLI(t, args...)
	if code1 != 0 {
		t.Fatalf("exit %d, stderr: %s", code1, err1)
	}
	code2, out2, _ := runCLI(t, args...)
	if code2 != 0 {
		t.Fatalf("second run exit %d", code2)
	}
	if out1 != out2 {
		t.Errorf("fixed-seed output differs between runs:\n--- first\n%s\n--- second\n%s", out1, out2)
	}
	if !strings.Contains(out1, "final cooperation:") {
		t.Errorf("output missing the summary line:\n%s", out1)
	}
}

func TestRunDynamicsFlagsEndToEnd(t *testing.T) {
	code, out, errOut := runCLI(t,
		"-case", "1", "-generations", "4", "-rounds", "10", "-reps", "1", "-seed", "3", "-q",
		"-churn", "0.25", "-churn-interval", "2", "-rewire", "0.5",
		"-free-riders", "2", "-liars", "2", "-onoff", "2", "-gossip", "5")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"recovery after churn", "byzantine cohort: 2 free-riders, 2 liars, 2 on-off"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunScenarioFamilyEndToEnd(t *testing.T) {
	code, out, errOut := runCLI(t,
		"-scenario", "churn 20% every 5 gens",
		"-generations", "6", "-rounds", "10", "-reps", "1", "-seed", "2", "-q")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "recovery after churn") {
		t.Errorf("churn scenario produced no recovery table:\n%s", out)
	}
}

func TestListScenariosIncludesDynamicsFamilies(t *testing.T) {
	code, out, _ := runCLI(t, "-list-scenarios")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, fam := range []string{"churn-sweep", "adversary-grid", "table4", "csn-grid"} {
		if !strings.Contains(out, fam) {
			t.Errorf("family %q missing from listing", fam)
		}
	}
}

// TestFlagValidationRejectsNonsense pins the fixes for the silent
// flag-validation gaps: values that used to be ignored (an explicit
// -islands 0 fell back to a serial run) or to surface as a confusing
// late error must be rejected up front with a clear message.
func TestFlagValidationRejectsNonsense(t *testing.T) {
	cases := []struct {
		args []string
		frag string // expected fragment of the error message
	}{
		{[]string{"-islands", "0"}, "islands must be >= 1"},
		{[]string{"-islands", "-2"}, "islands must be >= 1"},
		{[]string{"-population", "0"}, "population must be >= 1"},
		{[]string{"-population", "-5"}, "population must be >= 1"},
		{[]string{"-reps", "0"}, "reps must be >= 1"},
		{[]string{"-generations", "-1"}, "generations must be >= 1"},
		{[]string{"-rounds", "0"}, "rounds must be >= 1"},
		{[]string{"-islands", "2", "-migrants", "0"}, "migrants must be >= 1"},
		{[]string{"-islands", "2", "-migrants", "-1"}, "migrants must be >= 1"},
		{[]string{"-islands", "2", "-migration-interval", "-3"}, "migration-interval must be >= 1"},
		{[]string{"-churn", "1.5"}, "churn must be in [0,1]"},
		{[]string{"-churn", "-0.1"}, "churn must be in [0,1]"},
		{[]string{"-churn", "0.1", "-churn-interval", "0"}, "churn-interval must be >= 1"},
		{[]string{"-rewire", "2"}, "rewire must be in [0,1]"},
		{[]string{"-free-riders", "-1"}, "free-riders must be >= 0"},
		{[]string{"-gossip", "0"}, "gossip must be >= 1"},
		{[]string{"-topology", "ring"}, "-topology/-migration-interval/-migrants need -islands"},
		{[]string{"-case", "9"}, "no evaluation case"},
	}
	for _, tc := range cases {
		code, _, errOut := runCLI(t, tc.args...)
		if code != 2 {
			t.Errorf("args %v: exit %d, want 2 (stderr: %s)", tc.args, code, errOut)
			continue
		}
		if !strings.Contains(errOut, tc.frag) {
			t.Errorf("args %v: stderr %q missing %q", tc.args, errOut, tc.frag)
		}
	}
}

// TestLiarsWithoutGossipRejected pins the liar/gossip interaction: liars
// only attack through gossip, so seating them without a channel would
// silently *help* cooperation while being reported as adversaries. The
// check lives in scenario validation (a -scenario file may supply the
// gossip block itself), so it surfaces as a run error, not a flag error.
func TestLiarsWithoutGossipRejected(t *testing.T) {
	code, _, errOut := runCLI(t, "-case", "1", "-liars", "3",
		"-generations", "2", "-rounds", "10", "-reps", "1", "-q")
	if code == 0 {
		t.Fatal("liars without gossip accepted")
	}
	if !strings.Contains(errOut, "gossip liars but gossip is disabled") {
		t.Errorf("stderr %q missing the liar/gossip explanation", errOut)
	}
}

// TestInterruptEmitsPartialSeries pins the SIGINT behavior: a cancelled
// run exits 130 with the partial cooperation series and a clear
// "interrupted at generation N" marker instead of dying mid-write.
func TestInterruptEmitsPartialSeries(t *testing.T) {
	// Cancel shortly after the run starts; the job stops at its next
	// generation barrier long before the million-generation budget.
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	var stdout, stderr bytes.Buffer
	code := run(ctx, []string{"-case", "1", "-generations", "1000000", "-rounds", "10",
		"-reps", "1", "-seed", "6", "-q"}, &stdout, &stderr)
	if code != interruptedExit {
		t.Fatalf("exit %d, want %d (stderr: %s)", code, interruptedExit, stderr.String())
	}
	if !strings.Contains(stdout.String(), "interrupted") {
		t.Errorf("stdout missing the interruption marker:\n%s", stdout.String())
	}
}

// TestHelpExitsZero pins that -h is a successful invocation, as it was
// before the testable-seam refactor replaced flag.ExitOnError.
func TestHelpExitsZero(t *testing.T) {
	code, _, errOut := runCLI(t, "-h")
	if code != 0 {
		t.Errorf("-h exit %d, want 0", code)
	}
	if !strings.Contains(errOut, "-scenario") {
		t.Errorf("usage text missing from stderr:\n%s", errOut)
	}
}

// TestIslandsOfOneStillRuns pins that the -islands validation only rejects
// nonsense: the legitimate degenerate value 1 runs the serial engine.
func TestIslandsOfOneStillRuns(t *testing.T) {
	code, out, errOut := runCLI(t,
		"-case", "1", "-generations", "2", "-rounds", "10", "-reps", "1", "-seed", "4", "-q",
		"-islands", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "final cooperation:") {
		t.Errorf("output missing summary:\n%s", out)
	}
}
