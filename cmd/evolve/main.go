// Command evolve runs evolutionary experiments — a single Table 4
// evaluation case, or any batch of declarative scenarios — and prints the
// cooperation trajectory, final strategy census, and summary statistics.
//
// Usage:
//
//	evolve -case 1 -generations 100 -rounds 300 -reps 4 -seed 1
//	evolve -scenario spec.json            # user-authored scenario file
//	evolve -scenario csn-grid             # a registered scenario family
//	evolve -scenario "mixed TE1+TE4 (SP)" # one registered scenario
//	evolve -list-scenarios
//
// A scenario batch runs over one shared worker pool: workers cross
// scenario boundaries, so all cores stay busy even when each scenario has
// fewer replications than cores. At paper scale use -generations 500
// -rounds 300 -reps 60 (slow).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"adhocga/internal/experiment"
	"adhocga/internal/report"
	"adhocga/internal/scenario"
	"adhocga/internal/strategy"
	"adhocga/internal/textplot"
)

func main() {
	// All work happens in run so that deferred cleanup — stopping the CPU
	// profile, writing the heap profile — executes before the process
	// exits; os.Exit here would skip defers and truncate profiles.
	os.Exit(run())
}

func run() int {
	var (
		caseID      = flag.Int("case", 1, "evaluation case 1-4 (Table 4); ignored with -scenario")
		scenarioArg = flag.String("scenario", "", "scenario JSON file, registered family, or registered scenario name")
		generations = flag.Int("generations", 80, "generations per replication (set explicitly, overrides scenario specs)")
		rounds      = flag.Int("rounds", 150, "rounds per tournament (set explicitly, overrides scenario specs)")
		reps        = flag.Int("reps", 4, "independent replications (set explicitly, overrides scenario specs)")
		seed        = flag.Uint64("seed", 1, "master seed")
		par         = flag.Int("par", 0, "worker pool size (0 = all cores)")
		quiet       = flag.Bool("q", false, "suppress progress output")
		csvPath     = flag.String("csv", "", "write the cooperation series as CSV to this file (single scenario only)")
		savePath    = flag.String("save", "", "write the final strategy census to this file (ungrouped strategy + share per line; strings are accepted by adhocsim -mix); single scenario only")
		list        = flag.Bool("list-scenarios", false, "list registered scenario families and exit")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile  = flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // material allocations only, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *list {
		t := report.NewTable("registered scenario families", "family", "scenarios", "description")
		for _, f := range scenario.Families() {
			t.AddRow(f.Name, fmt.Sprint(len(f.Specs())), f.Description)
		}
		fmt.Print(t.Render())
		return 0
	}

	sc := experiment.Scale{Name: "custom", Generations: *generations, Rounds: *rounds, Repetitions: *reps}
	opts := experiment.Options{Parallelism: *par}
	if !*quiet {
		opts.OnReplicate = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rreplication %d/%d done", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	var results []*experiment.CaseResult
	if *scenarioArg != "" {
		specs, err := scenario.FromArg(*scenarioArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if (*csvPath != "" || *savePath != "") && len(specs) != 1 {
			fmt.Fprintln(os.Stderr, "-csv/-save need a single scenario; got", len(specs))
			return 2
		}
		// Explicitly-set scale flags win over scenario pins (matching
		// adhocsim's -scenario precedence); unset flags only provide
		// defaults for fields the spec leaves open.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		runs := make([]experiment.ScenarioRun, len(specs))
		for i, s := range specs {
			if set["generations"] {
				s.Generations = *generations
			}
			if set["rounds"] {
				s.Rounds = *rounds
			}
			if set["reps"] {
				s.Repetitions = *reps
			}
			runs[i] = experiment.ScenarioRun{Spec: s}
		}
		// RunScenarios derives a distinct fallback stream per scenario
		// from the batch seed; a spec's pinned seed still wins.
		opts.Seed = *seed
		results, err = experiment.RunScenarios(runs, sc, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	} else {
		c, err := experiment.CaseByID(*caseID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		opts.Seed = *seed
		res, err := experiment.RunCase(c, sc, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		results = []*experiment.CaseResult{res}
	}

	for i, res := range results {
		if i > 0 {
			fmt.Println()
		}
		printResult(res)
	}

	if *csvPath != "" {
		if err := writeCSV(*csvPath, results[0]); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("cooperation series written to %s\n", *csvPath)
	}
	if *savePath != "" {
		if err := writeCensus(*savePath, results[0]); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("final census written to %s\n", *savePath)
	}
	return 0
}

func printResult(res *experiment.CaseResult) {
	c, sc := res.Case, res.Scale
	series := res.CoopMean
	if len(c.Environments) > 1 {
		series = res.MeanEnvCoopMean
	}
	chart := textplot.Chart{
		Title: fmt.Sprintf("%s — cooperation level over %d generations (mean of %d reps)",
			c.Name, sc.Generations, sc.Repetitions),
		YMin: 0, YMax: 1, FixedY: true,
	}
	chart.AddSeries("cooperation", series)
	fmt.Println(chart.Render())

	fmt.Printf("final cooperation: %s\n", res.FinalCoop)
	if len(c.Environments) > 1 {
		fmt.Printf("final env-mean cooperation: %s\n", res.FinalMeanEnvCoop)
		for _, env := range res.PerEnv {
			fmt.Printf("  %s: coop %s  csn-free %s\n", env.Name, env.Cooperation, env.CSNFree)
		}
	}

	top := report.NewTable("\nmost frequent final strategies", "strategy", "share", "family")
	for _, e := range res.Census.Top(5) {
		top.AddRow(e.Strategy.String(), report.Percent(e.Fraction), string(e.Strategy.Classify()))
	}
	fmt.Println(top.Render())
	fmt.Printf("unknown-node forward share: %s\n", report.Percent(res.Census.UnknownForwardFraction()))
	fmt.Printf("mean trust monotonicity: %s\n", report.Percent(res.Census.MeanTrustMonotonicity()))
	fams := res.Census.CategoryCensus()
	fmt.Print("behavioral families:")
	for _, cat := range []strategy.Category{strategy.CategoryReciprocal, strategy.CategoryAltruist,
		strategy.CategoryDefector, strategy.CategoryContrarian, strategy.CategoryMixed} {
		if share := fams[cat]; share > 0 {
			fmt.Printf("  %s %s", cat, report.Percent(share))
		}
	}
	fmt.Println()
}

// writeCensus dumps every distinct final strategy with its population
// share, most frequent first, in the ungrouped notation adhocsim accepts.
func writeCensus(path string, res *experiment.CaseResult) error {
	var sb strings.Builder
	for _, e := range res.Census.Top(1 << 30) {
		fmt.Fprintf(&sb, "%s %.6f\n", e.Strategy.Key(), e.Fraction)
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

// writeCSV dumps the per-generation cooperation series (mean and std
// across replications).
func writeCSV(path string, res *experiment.CaseResult) error {
	t := report.NewTable("", "generation", "coop_mean", "coop_std", "mean_env_coop")
	for g := range res.CoopMean {
		t.AddRowf(g, res.CoopMean[g], res.CoopStd[g], res.MeanEnvCoopMean[g])
	}
	return os.WriteFile(path, []byte(t.CSV()), 0o644)
}
