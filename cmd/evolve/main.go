// Command evolve runs evolutionary experiments — a single Table 4
// evaluation case, or any batch of declarative scenarios — and prints the
// cooperation trajectory, final strategy census, and summary statistics.
//
// Usage:
//
//	evolve -case 1 -generations 100 -rounds 300 -reps 4 -seed 1
//	evolve -scenario spec.json            # user-authored scenario file
//	evolve -scenario csn-grid             # a registered scenario family
//	evolve -scenario "mixed TE1+TE4 (SP)" # one registered scenario
//	evolve -scenario table4-islands       # Table 4 on the island engine
//	evolve -case 1 -population 200 -islands 4 -topology ring \
//	       -migration-interval 10 -migrants 2
//	evolve -list-scenarios
//
// The -islands flags shard the population over an island-model engine
// (internal/island): subpopulations evolve concurrently and exchange elite
// genomes over the chosen topology. Results stay deterministic for a fixed
// seed at any parallelism level, and -islands 1 is bit-identical to the
// serial engine.
//
// A scenario batch runs over one shared worker pool: workers cross
// scenario boundaries, so all cores stay busy even when each scenario has
// fewer replications than cores. At paper scale use -generations 500
// -rounds 300 -reps 60 (slow).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"adhocga/internal/experiment"
	"adhocga/internal/report"
	"adhocga/internal/scenario"
	"adhocga/internal/strategy"
	"adhocga/internal/textplot"
)

func main() {
	// All work happens in run so that deferred cleanup — stopping the CPU
	// profile, writing the heap profile — executes before the process
	// exits; os.Exit here would skip defers and truncate profiles.
	os.Exit(run())
}

func run() int {
	var (
		caseID      = flag.Int("case", 1, "evaluation case 1-4 (Table 4); ignored with -scenario")
		scenarioArg = flag.String("scenario", "", "scenario JSON file, registered family, or registered scenario name")
		generations = flag.Int("generations", 80, "generations per replication (set explicitly, overrides scenario specs)")
		rounds      = flag.Int("rounds", 150, "rounds per tournament (set explicitly, overrides scenario specs)")
		reps        = flag.Int("reps", 4, "independent replications (set explicitly, overrides scenario specs)")
		population  = flag.Int("population", 0, "total evolving population (0 = scenario/paper default; must divide by -islands)")
		islands     = flag.Int("islands", 0, "shard the population over this many islands (0 = scenario default; 1 = serial)")
		topology    = flag.String("topology", "", "island migration topology: ring, full, or random-pairs")
		interval    = flag.Int("migration-interval", 0, "generations between island migrations (0 = default 10)")
		migrants    = flag.Int("migrants", 0, "elite genomes sent per topology edge each migration (0 = default 1)")
		seed        = flag.Uint64("seed", 1, "master seed")
		par         = flag.Int("par", 0, "worker pool size (0 = all cores)")
		quiet       = flag.Bool("q", false, "suppress progress output")
		csvPath     = flag.String("csv", "", "write the cooperation series as CSV to this file (single scenario only)")
		savePath    = flag.String("save", "", "write the final strategy census to this file (ungrouped strategy + share per line; strings are accepted by adhocsim -mix); single scenario only")
		list        = flag.Bool("list-scenarios", false, "list registered scenario families and exit")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile  = flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // material allocations only, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *list {
		t := report.NewTable("registered scenario families", "family", "scenarios", "description")
		for _, f := range scenario.Families() {
			t.AddRow(f.Name, fmt.Sprint(len(f.Specs())), f.Description)
		}
		fmt.Print(t.Render())
		return 0
	}

	sc := experiment.Scale{Name: "custom", Generations: *generations, Rounds: *rounds, Repetitions: *reps}
	opts := experiment.Options{Parallelism: *par}
	if !*quiet {
		opts.OnReplicate = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rreplication %d/%d done", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	// Explicitly-set scale flags win over scenario pins (matching
	// adhocsim's -scenario precedence); unset flags only provide
	// defaults for fields the spec leaves open.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	// applyOverrides overlays the explicitly-set flags on one spec. The
	// migration flags refuse to be dropped silently: without an island
	// count in play they would otherwise leave a serial run that looks
	// like the island experiment the user asked for.
	applyOverrides := func(s *scenario.Spec) error {
		if set["generations"] {
			s.Generations = *generations
		}
		if set["rounds"] {
			s.Rounds = *rounds
		}
		if set["reps"] {
			s.Repetitions = *reps
		}
		if set["population"] {
			s.Population = *population
		}
		if set["islands"] && *islands >= 1 {
			if s.Islands == nil {
				s.Islands = &scenario.IslandSpec{}
			}
			s.Islands.Count = *islands
		}
		if s.Islands == nil {
			if set["topology"] || set["migration-interval"] || set["migrants"] {
				return fmt.Errorf("evolve: -topology/-migration-interval/-migrants need -islands or a scenario with an islands block (scenario %q has none)", s.Name)
			}
			return nil
		}
		if set["topology"] {
			s.Islands.Topology = *topology
		}
		if set["migration-interval"] {
			s.Islands.Interval = *interval
		}
		if set["migrants"] {
			s.Islands.Migrants = *migrants
		}
		return nil
	}
	islandFlags := set["islands"] || set["population"] || set["topology"] ||
		set["migration-interval"] || set["migrants"]

	var results []*experiment.CaseResult
	if *scenarioArg != "" {
		specs, err := scenario.FromArg(*scenarioArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if (*csvPath != "" || *savePath != "") && len(specs) != 1 {
			fmt.Fprintln(os.Stderr, "-csv/-save need a single scenario; got", len(specs))
			return 2
		}
		runs := make([]experiment.ScenarioRun, len(specs))
		for i, s := range specs {
			if err := applyOverrides(&s); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			runs[i] = experiment.ScenarioRun{Spec: s}
		}
		// RunScenarios derives a distinct fallback stream per scenario
		// from the batch seed; a spec's pinned seed still wins.
		opts.Seed = *seed
		results, err = experiment.RunScenarios(runs, sc, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	} else if islandFlags {
		// The island/population flags need the case in its declarative
		// form; the Table 4 registry specs resolve to exactly what
		// RunCase runs, so this only changes what the flags can reach.
		if _, err := experiment.CaseByID(*caseID); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		var spec scenario.Spec
		for _, s := range scenario.Table4() {
			if s.ID == *caseID {
				spec = s
			}
		}
		if err := applyOverrides(&spec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		opts.Seed = *seed
		// Pinning the run seed keeps the replicate streams identical to
		// the equivalent -case invocation without island flags for any
		// nonzero -seed (0 is the "derive" sentinel throughout the
		// scenario layer, so a zero seed runs on a derived stream here).
		res, err := experiment.RunScenarios(
			[]experiment.ScenarioRun{{Spec: spec, Seed: *seed}}, sc, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		results = res
	} else {
		c, err := experiment.CaseByID(*caseID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		opts.Seed = *seed
		res, err := experiment.RunCase(c, sc, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		results = []*experiment.CaseResult{res}
	}

	for i, res := range results {
		if i > 0 {
			fmt.Println()
		}
		printResult(res)
	}

	if *csvPath != "" {
		if err := writeCSV(*csvPath, results[0]); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("cooperation series written to %s\n", *csvPath)
	}
	if *savePath != "" {
		if err := writeCensus(*savePath, results[0]); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("final census written to %s\n", *savePath)
	}
	return 0
}

func printResult(res *experiment.CaseResult) {
	c, sc := res.Case, res.Scale
	series := res.CoopMean
	if len(c.Environments) > 1 {
		series = res.MeanEnvCoopMean
	}
	chart := textplot.Chart{
		Title: fmt.Sprintf("%s — cooperation level over %d generations (mean of %d reps)",
			c.Name, sc.Generations, sc.Repetitions),
		YMin: 0, YMax: 1, FixedY: true,
	}
	chart.AddSeries("cooperation", series)
	fmt.Println(chart.Render())

	fmt.Printf("final cooperation: %s\n", res.FinalCoop)
	if len(c.Environments) > 1 {
		fmt.Printf("final env-mean cooperation: %s\n", res.FinalMeanEnvCoop)
		for _, env := range res.PerEnv {
			fmt.Printf("  %s: coop %s  csn-free %s\n", env.Name, env.Cooperation, env.CSNFree)
		}
	}

	if res.Islands != nil {
		fmt.Println()
		fmt.Print(experiment.IslandTable(res).Render())
		fmt.Printf("champion fitness: %s  migrants moved: %d over %d barriers\n",
			res.Islands.ChampionFitness, res.Islands.MigrantsMoved, res.Islands.MigrationEvents)
	}

	top := report.NewTable("\nmost frequent final strategies", "strategy", "share", "family")
	for _, e := range res.Census.Top(5) {
		top.AddRow(e.Strategy.String(), report.Percent(e.Fraction), string(e.Strategy.Classify()))
	}
	fmt.Println(top.Render())
	fmt.Printf("unknown-node forward share: %s\n", report.Percent(res.Census.UnknownForwardFraction()))
	fmt.Printf("mean trust monotonicity: %s\n", report.Percent(res.Census.MeanTrustMonotonicity()))
	fams := res.Census.CategoryCensus()
	fmt.Print("behavioral families:")
	for _, cat := range []strategy.Category{strategy.CategoryReciprocal, strategy.CategoryAltruist,
		strategy.CategoryDefector, strategy.CategoryContrarian, strategy.CategoryMixed} {
		if share := fams[cat]; share > 0 {
			fmt.Printf("  %s %s", cat, report.Percent(share))
		}
	}
	fmt.Println()
}

// writeCensus dumps every distinct final strategy with its population
// share, most frequent first, in the ungrouped notation adhocsim accepts.
func writeCensus(path string, res *experiment.CaseResult) error {
	var sb strings.Builder
	for _, e := range res.Census.Top(1 << 30) {
		fmt.Fprintf(&sb, "%s %.6f\n", e.Strategy.Key(), e.Fraction)
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

// writeCSV dumps the per-generation cooperation series (mean and std
// across replications).
func writeCSV(path string, res *experiment.CaseResult) error {
	t := report.NewTable("", "generation", "coop_mean", "coop_std", "mean_env_coop")
	for g := range res.CoopMean {
		t.AddRowf(g, res.CoopMean[g], res.CoopStd[g], res.MeanEnvCoopMean[g])
	}
	return os.WriteFile(path, []byte(t.CSV()), 0o644)
}
