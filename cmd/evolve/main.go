// Command evolve runs one evolutionary experiment (a single Table 4
// evaluation case) and prints the cooperation trajectory, final strategy
// census, and summary statistics.
//
// Usage:
//
//	evolve -case 1 -generations 100 -rounds 300 -reps 4 -seed 1
//
// At paper scale use -generations 500 -rounds 300 -reps 60 (slow).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"adhocga/internal/experiment"
	"adhocga/internal/report"
	"adhocga/internal/strategy"
	"adhocga/internal/textplot"
)

func main() {
	var (
		caseID      = flag.Int("case", 1, "evaluation case 1-4 (Table 4)")
		generations = flag.Int("generations", 80, "generations per replication")
		rounds      = flag.Int("rounds", 150, "rounds per tournament")
		reps        = flag.Int("reps", 4, "independent replications")
		seed        = flag.Uint64("seed", 1, "master seed")
		par         = flag.Int("par", 0, "worker pool size (0 = all cores)")
		quiet       = flag.Bool("q", false, "suppress progress output")
		csvPath     = flag.String("csv", "", "write the cooperation series as CSV to this file")
		savePath    = flag.String("save", "", "write the final strategy census to this file (ungrouped strategy + share per line; strings are accepted by adhocsim -mix)")
	)
	flag.Parse()

	c, err := experiment.CaseByID(*caseID)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sc := experiment.Scale{Name: "custom", Generations: *generations, Rounds: *rounds, Repetitions: *reps}
	opts := experiment.Options{Seed: *seed, Parallelism: *par}
	if !*quiet {
		opts.OnReplicate = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rreplication %d/%d done", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	res, err := experiment.RunCase(c, sc, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	series := res.CoopMean
	if len(c.Environments) > 1 {
		series = res.MeanEnvCoopMean
	}
	chart := textplot.Chart{
		Title: fmt.Sprintf("%s — cooperation level over %d generations (mean of %d reps)",
			c.Name, sc.Generations, sc.Repetitions),
		YMin: 0, YMax: 1, FixedY: true,
	}
	chart.AddSeries("cooperation", series)
	fmt.Println(chart.Render())

	fmt.Printf("final cooperation: %s\n", res.FinalCoop)
	if len(c.Environments) > 1 {
		fmt.Printf("final env-mean cooperation: %s\n", res.FinalMeanEnvCoop)
		for _, env := range res.PerEnv {
			fmt.Printf("  %s: coop %s  csn-free %s\n", env.Name, env.Cooperation, env.CSNFree)
		}
	}

	top := report.NewTable("\nmost frequent final strategies", "strategy", "share", "family")
	for _, e := range res.Census.Top(5) {
		top.AddRow(e.Strategy.String(), report.Percent(e.Fraction), string(e.Strategy.Classify()))
	}
	fmt.Println(top.Render())
	fmt.Printf("unknown-node forward share: %s\n", report.Percent(res.Census.UnknownForwardFraction()))
	fmt.Printf("mean trust monotonicity: %s\n", report.Percent(res.Census.MeanTrustMonotonicity()))
	fams := res.Census.CategoryCensus()
	fmt.Print("behavioral families:")
	for _, cat := range []strategy.Category{strategy.CategoryReciprocal, strategy.CategoryAltruist,
		strategy.CategoryDefector, strategy.CategoryContrarian, strategy.CategoryMixed} {
		if share := fams[cat]; share > 0 {
			fmt.Printf("  %s %s", cat, report.Percent(share))
		}
	}
	fmt.Println()

	if *csvPath != "" {
		if err := writeCSV(*csvPath, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("cooperation series written to %s\n", *csvPath)
	}
	if *savePath != "" {
		if err := writeCensus(*savePath, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("final census written to %s\n", *savePath)
	}
}

// writeCensus dumps every distinct final strategy with its population
// share, most frequent first, in the ungrouped notation adhocsim accepts.
func writeCensus(path string, res *experiment.CaseResult) error {
	var sb strings.Builder
	for _, e := range res.Census.Top(1 << 30) {
		fmt.Fprintf(&sb, "%s %.6f\n", e.Strategy.Key(), e.Fraction)
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

// writeCSV dumps the per-generation cooperation series (mean and std
// across replications).
func writeCSV(path string, res *experiment.CaseResult) error {
	t := report.NewTable("", "generation", "coop_mean", "coop_std", "mean_env_coop")
	for g := range res.CoopMean {
		t.AddRowf(g, res.CoopMean[g], res.CoopStd[g], res.MeanEnvCoopMean[g])
	}
	return os.WriteFile(path, []byte(t.CSV()), 0o644)
}
