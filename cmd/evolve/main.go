// Command evolve runs evolutionary experiments — a single Table 4
// evaluation case, or any batch of declarative scenarios — and prints the
// cooperation trajectory, final strategy census, and summary statistics.
//
// Usage:
//
//	evolve -case 1 -generations 100 -rounds 300 -reps 4 -seed 1
//	evolve -scenario spec.json            # user-authored scenario file
//	evolve -scenario csn-grid             # a registered scenario family
//	evolve -scenario "mixed TE1+TE4 (SP)" # one registered scenario
//	evolve -scenario churn-sweep          # churn / recovery-after-churn sweep
//	evolve -scenario adversary-grid       # Byzantine adversary grid
//	evolve -case 1 -population 200 -islands 4 -topology ring \
//	       -migration-interval 10 -migrants 2
//	evolve -case 1 -churn 0.1 -churn-interval 5 -rewire 0.5
//	evolve -case 1 -free-riders 5 -liars 5 -onoff 5 -gossip 10
//	evolve -list-scenarios
//
// The -islands flags shard the population over an island-model engine
// (internal/island): subpopulations evolve concurrently and exchange elite
// genomes over the chosen topology. The dynamics flags (-churn, -rewire,
// -free-riders, -liars, -onoff) enable the environment-perturbation layer
// (internal/dynamics): population churn with naive immigrants, mobility-
// driven route-length drift, and Byzantine adversaries in every
// tournament. Results stay deterministic for a fixed seed at any
// parallelism level; -islands 1 and all-zero dynamics are bit-identical to
// the static serial engine.
//
// A scenario batch runs as one job on a Session (the package adhocga
// Session/Job API): every (scenario × replicate) pair is a work unit on
// the session's shared pool, so all cores stay busy even when each
// scenario has fewer replications than cores. SIGINT/SIGTERM cancel the
// job cooperatively: every replicate stops at its next generation barrier
// and the partial cooperation series streamed so far is printed with an
// "interrupted at generation N" marker instead of dying mid-write. At
// paper scale use -generations 500 -rounds 300 -reps 60 (slow).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"adhocga"
	"adhocga/internal/experiment"
	"adhocga/internal/report"
	"adhocga/internal/scenario"
	"adhocga/internal/strategy"
	"adhocga/internal/textplot"
)

func main() {
	// All work happens in run so that deferred cleanup — stopping the CPU
	// profile, writing the heap profile — executes before the process
	// exits; os.Exit here would skip defers and truncate profiles.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// interruptedExit is the exit code of a SIGINT-cancelled run (128+SIGINT,
// the shell convention), after the partial series has been emitted.
const interruptedExit = 130

// run is the whole CLI behind a testable seam: flags are parsed from args
// into a private FlagSet and every byte of output goes to the given
// writers, so the smoke tests can replay an invocation and byte-compare.
// Cancelling ctx (SIGINT/SIGTERM in main) stops the running job at its
// next generation barrier.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("evolve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		caseID      = fs.Int("case", 1, "evaluation case 1-4 (Table 4); ignored with -scenario")
		scenarioArg = fs.String("scenario", "", "scenario JSON file, registered family, or registered scenario name")
		generations = fs.Int("generations", 80, "generations per replication (set explicitly, overrides scenario specs)")
		rounds      = fs.Int("rounds", 150, "rounds per tournament (set explicitly, overrides scenario specs)")
		reps        = fs.Int("reps", 4, "independent replications (set explicitly, overrides scenario specs)")
		population  = fs.Int("population", 0, "total evolving population (unset = scenario/paper default; must divide by -islands)")
		islands     = fs.Int("islands", 0, "shard the population over this many islands (unset = scenario default; 1 = serial)")
		topology    = fs.String("topology", "", "island migration topology: ring, full, or random-pairs")
		interval    = fs.Int("migration-interval", 0, "generations between island migrations (unset = default 10)")
		migrants    = fs.Int("migrants", 0, "elite genomes sent per topology edge each migration (unset = default 1)")
		churn       = fs.Float64("churn", 0, "fraction of the population replaced by naive immigrants at each dynamics barrier [0,1]")
		churnIntv   = fs.Int("churn-interval", 0, "generations between dynamics barriers (unset = default 1)")
		rewire      = fs.Float64("rewire", 0, "per-barrier probability of mobility rewiring the route-length landscape [0,1]")
		freeRiders  = fs.Int("free-riders", 0, "Byzantine free-riders seated in every tournament")
		liars       = fs.Int("liars", 0, "Byzantine gossip liars seated in every tournament (enable -gossip)")
		onoff       = fs.Int("onoff", 0, "Byzantine on-off attackers seated in every tournament")
		gossip      = fs.Int("gossip", 0, "rounds between reputation gossip exchanges (unset = off)")
		seed        = fs.Uint64("seed", 1, "master seed")
		par         = fs.Int("par", 0, "worker pool size (0 = all cores)")
		quiet       = fs.Bool("q", false, "suppress progress output")
		csvPath     = fs.String("csv", "", "write the cooperation series as CSV to this file (single scenario only)")
		savePath    = fs.String("save", "", "write the final strategy census to this file (ungrouped strategy + share per line; strings are accepted by adhocsim -mix); single scenario only")
		list        = fs.Bool("list-scenarios", false, "list registered scenario families and exit")
		cpuProfile  = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile  = fs.String("memprofile", "", "write a heap profile taken after the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	// Fail fast on nonsense values the downstream layers would otherwise
	// silently ignore (an explicit -islands 0 used to fall back to a
	// serial run that looked like the island experiment the user asked
	// for) or turn into a confusing late error.
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	for _, check := range []struct {
		name string
		bad  bool
		msg  string
	}{
		{"generations", *generations < 1, "generations must be >= 1"},
		{"rounds", *rounds < 1, "rounds must be >= 1"},
		{"reps", *reps < 1, "reps must be >= 1"},
		{"population", *population < 1, "population must be >= 1"},
		{"islands", *islands < 1, "islands must be >= 1"},
		{"migration-interval", *interval < 1, "migration-interval must be >= 1"},
		{"migrants", *migrants < 1, "migrants must be >= 1"},
		{"churn", *churn < 0 || *churn > 1, "churn must be in [0,1]"},
		{"churn-interval", *churnIntv < 1, "churn-interval must be >= 1"},
		{"rewire", *rewire < 0 || *rewire > 1, "rewire must be in [0,1]"},
		{"free-riders", *freeRiders < 0, "free-riders must be >= 0"},
		{"liars", *liars < 0, "liars must be >= 0"},
		{"onoff", *onoff < 0, "onoff must be >= 0"},
		{"gossip", *gossip < 1, "gossip must be >= 1"},
	} {
		if set[check.name] && check.bad {
			fmt.Fprintf(stderr, "evolve: -%s: %s\n", check.name, check.msg)
			return 2
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // material allocations only, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, err)
			}
		}()
	}

	if *list {
		t := report.NewTable("registered scenario families", "family", "scenarios", "description")
		for _, f := range scenario.Families() {
			t.AddRow(f.Name, fmt.Sprint(len(f.Specs())), f.Description)
		}
		fmt.Fprint(stdout, t.Render())
		return 0
	}

	sc := experiment.Scale{Name: "custom", Generations: *generations, Rounds: *rounds, Repetitions: *reps}

	// One Session per invocation: its shared pool carries every replicate,
	// and SIGINT cancels the submitted job at the next generation barrier.
	session := adhocga.NewSession(adhocga.WithPoolSize(*par))
	defer session.Close()

	// Explicitly-set scale flags win over scenario pins (matching
	// adhocsim's -scenario precedence); unset flags only provide
	// defaults for fields the spec leaves open.
	//
	// applyOverrides overlays the explicitly-set flags on one spec. The
	// migration flags refuse to be dropped silently: without an island
	// count in play they would otherwise leave a serial run that looks
	// like the island experiment the user asked for.
	applyOverrides := func(s *scenario.Spec) error {
		if set["generations"] {
			s.Generations = *generations
		}
		if set["rounds"] {
			s.Rounds = *rounds
		}
		if set["reps"] {
			s.Repetitions = *reps
		}
		if set["population"] {
			s.Population = *population
		}
		if set["islands"] {
			if s.Islands == nil {
				s.Islands = &scenario.IslandSpec{}
			}
			s.Islands.Count = *islands
		}
		if set["churn"] || set["rewire"] || set["free-riders"] || set["liars"] || set["onoff"] {
			if s.Dynamics == nil {
				s.Dynamics = &scenario.DynamicsSpec{}
			}
		}
		if d := s.Dynamics; d != nil {
			if set["churn"] {
				d.ChurnRate = *churn
			}
			if set["churn-interval"] {
				d.Interval = *churnIntv
			}
			if set["rewire"] {
				d.RewireProb = *rewire
			}
			if set["free-riders"] {
				d.FreeRiders = *freeRiders
			}
			if set["liars"] {
				d.Liars = *liars
			}
			if set["onoff"] {
				d.OnOff = *onoff
			}
		} else if set["churn-interval"] {
			return fmt.Errorf("evolve: -churn-interval needs -churn or a scenario with a dynamics block (scenario %q has none)", s.Name)
		}
		if set["gossip"] {
			if s.Gossip == nil {
				s.Gossip = &scenario.GossipSpec{}
			}
			s.Gossip.Interval = *gossip
		}
		if s.Islands == nil {
			if set["topology"] || set["migration-interval"] || set["migrants"] {
				return fmt.Errorf("evolve: -topology/-migration-interval/-migrants need -islands or a scenario with an islands block (scenario %q has none)", s.Name)
			}
			return nil
		}
		if set["topology"] {
			s.Islands.Topology = *topology
		}
		if set["migration-interval"] {
			s.Islands.Interval = *interval
		}
		if set["migrants"] {
			s.Islands.Migrants = *migrants
		}
		return nil
	}
	specFlags := set["islands"] || set["population"] || set["topology"] ||
		set["migration-interval"] || set["migrants"] ||
		set["churn"] || set["churn-interval"] || set["rewire"] ||
		set["free-riders"] || set["liars"] || set["onoff"] || set["gossip"]

	var results []*experiment.CaseResult
	var code int
	if *scenarioArg != "" {
		specs, err := scenario.FromArg(*scenarioArg)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if (*csvPath != "" || *savePath != "") && len(specs) != 1 {
			fmt.Fprintln(stderr, "-csv/-save need a single scenario; got", len(specs))
			return 2
		}
		runs := make([]experiment.ScenarioRun, len(specs))
		names := make([]string, len(specs))
		for i, s := range specs {
			if err := applyOverrides(&s); err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			runs[i] = experiment.ScenarioRun{Spec: s}
			names[i] = s.Name
		}
		// The scenarios job derives a distinct fallback stream per
		// scenario from the batch seed; a spec's pinned seed still wins.
		results, code = runJob(ctx, session, adhocga.ScenariosSpec{
			Runs: runs, Defaults: sc,
			Opts: experiment.Options{Seed: *seed, Parallelism: *par},
		}, names, *quiet, stdout, stderr)
	} else if specFlags {
		// The island/population/dynamics flags need the case in its
		// declarative form; the Table 4 registry specs resolve to exactly
		// what RunCase runs, so this only changes what the flags can
		// reach.
		if _, err := experiment.CaseByID(*caseID); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		var spec scenario.Spec
		for _, s := range scenario.Table4() {
			if s.ID == *caseID {
				spec = s
			}
		}
		if err := applyOverrides(&spec); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		// Pinning the run seed keeps the replicate streams identical to
		// the equivalent -case invocation without island flags for any
		// nonzero -seed (0 is the "derive" sentinel throughout the
		// scenario layer, so a zero seed runs on a derived stream here).
		results, code = runJob(ctx, session, adhocga.ScenariosSpec{
			Runs: []experiment.ScenarioRun{{Spec: spec, Seed: *seed}}, Defaults: sc,
			Opts: experiment.Options{Seed: *seed, Parallelism: *par},
		}, []string{spec.Name}, *quiet, stdout, stderr)
	} else {
		c, err := experiment.CaseByID(*caseID)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		results, code = runJob(ctx, session, adhocga.CaseSpec{
			Case: c, Scale: sc,
			Opts: experiment.Options{Seed: *seed, Parallelism: *par},
		}, []string{c.Name}, *quiet, stdout, stderr)
	}
	if code >= 0 {
		return code
	}

	for i, res := range results {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		printResult(stdout, res)
	}

	if *csvPath != "" {
		if err := writeCSV(*csvPath, results[0]); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "cooperation series written to %s\n", *csvPath)
	}
	if *savePath != "" {
		if err := writeCensus(*savePath, results[0]); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "final census written to %s\n", *savePath)
	}
	return 0
}

// runJob submits one job to the session and consumes its event stream:
// replicate completions become the progress line on stderr, generation
// events fold into a partial-series accumulator. The returned exit code is
// -1 on success (results valid), interruptedExit after a cooperative
// cancellation (the partial cooperation series has been printed with its
// interruption marker), and 1 on failure.
func runJob(ctx context.Context, session *adhocga.Session, spec adhocga.JobSpec, names []string, quiet bool, stdout, stderr io.Writer) ([]*experiment.CaseResult, int) {
	job, err := session.Submit(ctx, spec)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return nil, 1
	}
	var partial adhocga.PartialSeries
	for e := range job.Events() {
		switch e.Kind {
		case adhocga.KindReplicate:
			if !quiet {
				fmt.Fprintf(stderr, "\rreplication %d/%d done", e.Replicate.Done, e.Replicate.Total)
				if e.Replicate.Done == e.Replicate.Total {
					fmt.Fprintln(stderr)
				}
			}
		default:
			partial.Add(e)
		}
	}
	// The event stream is closed, so the job is terminal: Wait only
	// collects its error.
	if err := job.Wait(context.Background()); err != nil {
		if job.State() == adhocga.JobCancelled {
			if !quiet {
				fmt.Fprintln(stderr)
			}
			adhocga.RenderInterrupted(stdout, &partial, names)
			return nil, interruptedExit
		}
		fmt.Fprintln(stderr, err)
		return nil, 1
	}
	switch res := job.Result().(type) {
	case []*experiment.CaseResult:
		return res, -1
	case *experiment.CaseResult:
		return []*experiment.CaseResult{res}, -1
	default:
		fmt.Fprintf(stderr, "evolve: unexpected job result %T\n", res)
		return nil, 1
	}
}

func printResult(w io.Writer, res *experiment.CaseResult) {
	c, sc := res.Case, res.Scale
	series := res.CoopMean
	if len(c.Environments) > 1 {
		series = res.MeanEnvCoopMean
	}
	chart := textplot.Chart{
		Title: fmt.Sprintf("%s — cooperation level over %d generations (mean of %d reps)",
			c.Name, sc.Generations, sc.Repetitions),
		YMin: 0, YMax: 1, FixedY: true,
	}
	chart.AddSeries("cooperation", series)
	fmt.Fprintln(w, chart.Render())

	fmt.Fprintf(w, "final cooperation: %s\n", res.FinalCoop)
	if len(c.Environments) > 1 {
		fmt.Fprintf(w, "final env-mean cooperation: %s\n", res.FinalMeanEnvCoop)
		for _, env := range res.PerEnv {
			fmt.Fprintf(w, "  %s: coop %s  csn-free %s\n", env.Name, env.Cooperation, env.CSNFree)
		}
	}

	if res.Islands != nil {
		fmt.Fprintln(w)
		fmt.Fprint(w, experiment.IslandTable(res).Render())
		fmt.Fprintf(w, "champion fitness: %s  migrants moved: %d over %d barriers\n",
			res.Islands.ChampionFitness, res.Islands.MigrantsMoved, res.Islands.MigrationEvents)
	}

	if res.Recovery != nil {
		fmt.Fprintln(w)
		fmt.Fprint(w, experiment.RecoveryTable(res).Render())
	}
	if d := res.Dynamics; d != nil && d.AdversaryCount() > 0 {
		fmt.Fprintf(w, "byzantine cohort: %d free-riders, %d liars, %d on-off (%s of each tournament)\n",
			d.FreeRiders, d.Liars, d.OnOff,
			report.Percent(float64(d.AdversaryCount())/float64(res.TournamentSize)))
		if res.FromByz.Total() > 0 {
			acc, _, _ := res.FromByz.Fractions()
			fmt.Fprintf(w, "requests from byzantine sources accepted: %s\n", report.Percent(acc))
		}
	}

	top := report.NewTable("\nmost frequent final strategies", "strategy", "share", "family")
	for _, e := range res.Census.Top(5) {
		top.AddRow(e.Strategy.String(), report.Percent(e.Fraction), string(e.Strategy.Classify()))
	}
	fmt.Fprintln(w, top.Render())
	fmt.Fprintf(w, "unknown-node forward share: %s\n", report.Percent(res.Census.UnknownForwardFraction()))
	fmt.Fprintf(w, "mean trust monotonicity: %s\n", report.Percent(res.Census.MeanTrustMonotonicity()))
	fams := res.Census.CategoryCensus()
	fmt.Fprint(w, "behavioral families:")
	for _, cat := range []strategy.Category{strategy.CategoryReciprocal, strategy.CategoryAltruist,
		strategy.CategoryDefector, strategy.CategoryContrarian, strategy.CategoryMixed} {
		if share := fams[cat]; share > 0 {
			fmt.Fprintf(w, "  %s %s", cat, report.Percent(share))
		}
	}
	fmt.Fprintln(w)
}

// writeCensus dumps every distinct final strategy with its population
// share, most frequent first, in the ungrouped notation adhocsim accepts.
func writeCensus(path string, res *experiment.CaseResult) error {
	var sb strings.Builder
	for _, e := range res.Census.Top(1 << 30) {
		fmt.Fprintf(&sb, "%s %.6f\n", e.Strategy.Key(), e.Fraction)
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

// writeCSV dumps the per-generation cooperation series (mean and std
// across replications).
func writeCSV(path string, res *experiment.CaseResult) error {
	t := report.NewTable("", "generation", "coop_mean", "coop_std", "mean_env_coop")
	for g := range res.CoopMean {
		t.AddRowf(g, res.CoopMean[g], res.CoopStd[g], res.MeanEnvCoopMean[g])
	}
	return os.WriteFile(path, []byte(t.CSV()), 0o644)
}
