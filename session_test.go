package adhocga

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"
)

// smallConfig is a seconds-scale evolution configuration for session
// tests.
func smallConfig(gens int, seed uint64) EvolutionConfig {
	cfg := DefaultEvolutionConfig(PaperEnvironments()[:1], ShorterPaths(), seed)
	cfg.PopulationSize = 20
	cfg.Eval.TournamentSize = 10
	cfg.Eval.Tournament.Rounds = 10
	cfg.Generations = gens
	return cfg
}

// drain collects a job's full event stream.
func drain(t *testing.T, j *Job) []Event {
	t.Helper()
	var out []Event
	for e := range j.Events() {
		out = append(out, e)
	}
	return out
}

// TestSessionEvolveBitIdenticalToEngine pins the redesign's core
// guarantee: a job submitted through the Session produces exactly the
// numbers the bare engine produces.
func TestSessionEvolveBitIdenticalToEngine(t *testing.T) {
	direct, err := Evolve(smallConfig(4, 11)) // deprecated wrapper → default session
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(WithPoolSize(2))
	defer s.Close()
	viaSession, err := s.Evolve(context.Background(), smallConfig(4, 11))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.CoopSeries, viaSession.CoopSeries) {
		t.Errorf("session path diverged:\nwrapper: %v\nsession: %v", direct.CoopSeries, viaSession.CoopSeries)
	}
}

func TestSubmitEvolveStreamsGenerationEvents(t *testing.T) {
	s := NewSession()
	defer s.Close()
	const gens = 4
	j, err := s.Submit(context.Background(), EvolveSpec{Config: smallConfig(gens, 7)})
	if err != nil {
		t.Fatal(err)
	}
	events := drain(t, j)
	var genEvents int
	for i, e := range events {
		if e.Seq != i || e.Job != j.ID() {
			t.Errorf("event %d has seq %d job %q", i, e.Seq, e.Job)
		}
		if e.Kind == KindGeneration {
			if e.Generation == nil || e.Generation.Gen != genEvents {
				t.Errorf("generation event %d malformed: %+v", genEvents, e.Generation)
			}
			genEvents++
		}
	}
	if genEvents != gens {
		t.Errorf("%d generation events, want %d", genEvents, gens)
	}
	last := events[len(events)-1]
	if last.Kind != KindDone || last.Done == nil || last.Done.State != JobDone {
		t.Errorf("terminal event wrong: %+v", last)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok := j.Result().(*EvolutionResult); !ok {
		t.Errorf("result type %T", j.Result())
	}
	if j.State() != JobDone {
		t.Errorf("state %s", j.State())
	}
}

func TestSubmitScenariosStreamsReplicateAndGenerationEvents(t *testing.T) {
	s := NewSession(WithPoolSize(1))
	defer s.Close()
	spec, err := ScenarioFamilyByName("table4")
	if err != nil {
		t.Fatal(err)
	}
	runs := []ScenarioRun{{Spec: spec.Specs()[0], Seed: 5}}
	sc := Scale{Name: "test", Generations: 2, Rounds: 10, Repetitions: 2}
	j, err := s.Submit(context.Background(), ScenariosSpec{Runs: runs, Defaults: sc, Opts: RunOptions{Parallelism: 1}})
	if err != nil {
		t.Fatal(err)
	}
	events := drain(t, j)
	var reps, gens int
	for _, e := range events {
		switch e.Kind {
		case KindReplicate:
			reps++
			if e.Replicate.Total != 2 {
				t.Errorf("replicate total %d", e.Replicate.Total)
			}
		case KindGeneration:
			gens++
		}
	}
	if reps != 2 || gens != 4 {
		t.Errorf("replicate events %d (want 2), generation events %d (want 4)", reps, gens)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, ok := j.Result().([]*CaseResult)
	if !ok || len(res) != 1 {
		t.Fatalf("result %T", j.Result())
	}
	// The session path must agree with the legacy facade bit for bit.
	legacy, err := RunScenarios(runs, sc, RunOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res[0].CoopMean, legacy[0].CoopMean) {
		t.Errorf("session scenario run diverged from legacy path")
	}
}

func TestSubmitIslandsStreamsIslandEvents(t *testing.T) {
	s := NewSession()
	defer s.Close()
	cfg := IslandConfig{Core: smallConfig(3, 9), Count: 2, Interval: 2}
	j, err := s.Submit(context.Background(), IslandsSpec{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	var islandEvents int
	for e := range j.Events() {
		if e.Kind == KindIslands {
			if len(e.Islands.PerIsland) != 2 {
				t.Errorf("island event has %d islands", len(e.Islands.PerIsland))
			}
			islandEvents++
		}
	}
	if islandEvents != 3 {
		t.Errorf("%d island events, want 3", islandEvents)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok := j.Result().(*IslandResult); !ok {
		t.Errorf("result type %T", j.Result())
	}
}

func TestSubmitChurnScenarioEmitsChurnEvents(t *testing.T) {
	s := NewSession()
	defer s.Close()
	cfg := smallConfig(4, 13)
	cfg.Dynamics = &DynamicsConfig{ChurnRate: 0.3, Interval: 2}
	j, err := s.Submit(context.Background(), EvolveSpec{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	var churns int
	for e := range j.Events() {
		if e.Kind == KindChurn {
			churns++
		}
	}
	if churns == 0 {
		t.Error("churning run emitted no churn events")
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitSweepMixIPDRP(t *testing.T) {
	s := NewSession()
	defer s.Close()
	ctx := context.Background()

	sweep, err := s.CSNSweep(ctx, []int{0, 5}, ShorterPaths(),
		Scale{Name: "test", Generations: 2, Rounds: 10, Repetitions: 1}, RunOptions{Seed: 3})
	if err != nil || len(sweep) != 2 {
		t.Fatalf("sweep: %v %v", sweep, err)
	}

	mix, err := s.RunMix(ctx, MixConfig{
		Groups: []MixGroup{{Profile: ProfileAllCooperate, Count: 10}},
		CSN:    2, Rounds: 20, Mode: ShorterPaths(), Game: DefaultGameConfig(), Seed: 4,
	})
	if err != nil || mix == nil {
		t.Fatalf("mix: %v %v", mix, err)
	}

	icfg := DefaultIPDRPConfig(5)
	icfg.Generations = 3
	icfg.Rounds = 10
	ires, err := s.RunIPDRP(ctx, icfg)
	if err != nil || len(ires.CoopSeries) != 3 {
		t.Fatalf("ipdrp: %v %v", ires, err)
	}
}

// TestCancellationStopsAtGenerationBarrier pins the redesign's
// cancellation contract: a cancelled evolve job stops at the next
// generation barrier, turns JobCancelled, and still delivers the partial
// cooperation series.
func TestCancellationStopsAtGenerationBarrier(t *testing.T) {
	s := NewSession()
	defer s.Close()
	const gens = 500 // would take minutes if cancellation failed
	j, err := s.Submit(context.Background(), EvolveSpec{Config: smallConfig(gens, 17)})
	if err != nil {
		t.Fatal(err)
	}
	// Cancel after the second generation event arrives.
	seen := 0
	for e := range j.EventsContext(context.Background()) {
		if e.Kind == KindGeneration {
			if seen++; seen == 2 {
				j.Cancel()
				break
			}
		}
	}
	werr := j.Wait(context.Background())
	if !errors.Is(werr, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", werr)
	}
	if j.State() != JobCancelled {
		t.Errorf("state %s, want cancelled", j.State())
	}
	res, ok := j.Result().(*EvolutionResult)
	if !ok || res == nil {
		t.Fatalf("no partial result: %T", j.Result())
	}
	if n := len(res.CoopSeries); n < 2 || n >= gens {
		t.Errorf("partial series has %d generations, want a few", n)
	}
}

// TestCancelledJobFreesItsSlot pins the service-critical invariant: a
// killed job releases its concurrent-job slot so queued jobs run.
func TestCancelledJobFreesItsSlot(t *testing.T) {
	s := NewSession(WithMaxConcurrentJobs(1))
	defer s.Close()
	ctx := context.Background()
	long, err := s.Submit(ctx, EvolveSpec{Config: smallConfig(100000, 19)})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the long job is demonstrably running.
	for e := range long.EventsContext(ctx) {
		if e.Kind == KindGeneration {
			break
		}
	}
	queued, err := s.Submit(ctx, EvolveSpec{Config: smallConfig(2, 19)})
	if err != nil {
		t.Fatal(err)
	}
	if st := queued.State(); st != JobQueued {
		t.Fatalf("second job state %s, want queued behind the slot", st)
	}
	long.Cancel()
	if err := long.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("long job: %v", err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := queued.Wait(waitCtx); err != nil {
		t.Fatalf("queued job never got the freed slot: %v", err)
	}
}

func TestCancelWhileQueued(t *testing.T) {
	s := NewSession(WithMaxConcurrentJobs(1))
	defer s.Close()
	ctx := context.Background()
	long, err := s.Submit(ctx, EvolveSpec{Config: smallConfig(100000, 23)})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(ctx, EvolveSpec{Config: smallConfig(2, 23)})
	if err != nil {
		t.Fatal(err)
	}
	queued.Cancel()
	if err := queued.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued cancel: %v", err)
	}
	if queued.State() != JobCancelled {
		t.Errorf("state %s", queued.State())
	}
	long.Cancel()
	long.Wait(ctx)
}

func TestSessionCloseRejectsAndCancels(t *testing.T) {
	s := NewSession()
	j, err := s.Submit(context.Background(), EvolveSpec{Config: smallConfig(100000, 29)})
	if err != nil {
		t.Fatal(err)
	}
	s.Close() // must cancel the running job and wait for it
	if !j.State().Terminal() {
		t.Errorf("job state %s after Close", j.State())
	}
	if _, err := s.Submit(context.Background(), EvolveSpec{Config: smallConfig(2, 29)}); err == nil {
		t.Error("closed session accepted a job")
	}
}

func TestEventsReplayAfterCompletion(t *testing.T) {
	s := NewSession()
	defer s.Close()
	j, err := s.Submit(context.Background(), EvolveSpec{Config: smallConfig(3, 31)})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	first := drain(t, j)
	second := drain(t, j) // late subscriber: full replay
	if !reflect.DeepEqual(first, second) {
		t.Error("late subscription did not replay the identical stream")
	}
	if len(second) == 0 || second[len(second)-1].Kind != KindDone {
		t.Error("replayed stream not terminated by the done event")
	}
	if j.EventCount() != len(first) {
		t.Errorf("EventCount %d, log %d", j.EventCount(), len(first))
	}
}

func TestJobFailureState(t *testing.T) {
	s := NewSession()
	defer s.Close()
	bad := smallConfig(2, 1)
	bad.PopulationSize = 1 // invalid
	j, err := s.Submit(context.Background(), EvolveSpec{Config: bad})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err == nil {
		t.Fatal("invalid config did not fail the job")
	}
	if j.State() != JobFailed {
		t.Errorf("state %s, want failed", j.State())
	}
	events := drain(t, j)
	last := events[len(events)-1]
	if last.Done == nil || last.Done.State != JobFailed || last.Done.Error == "" {
		t.Errorf("terminal event %+v", last)
	}
}

func TestSessionLookupAndIDs(t *testing.T) {
	s := NewSession()
	defer s.Close()
	j1, _ := s.Submit(context.Background(), EvolveSpec{Config: smallConfig(1, 1)})
	j2, _ := s.Submit(context.Background(), EvolveSpec{Config: smallConfig(1, 2)})
	if j1.ID() != "job-1" || j2.ID() != "job-2" {
		t.Errorf("ids %s %s", j1.ID(), j2.ID())
	}
	if got, ok := s.Job("job-2"); !ok || got != j2 {
		t.Error("lookup failed")
	}
	if jobs := s.Jobs(); len(jobs) != 2 || jobs[0] != j1 {
		t.Error("Jobs() wrong")
	}
	j1.Wait(context.Background())
	j2.Wait(context.Background())
}

// TestDefaultSeedAppliesOnSubmitPath pins the seed policy: a batch spec
// submitted directly (the adhocd path) uses the session's WithDefaultSeed
// exactly like one run through the convenience wrapper.
func TestDefaultSeedAppliesOnSubmitPath(t *testing.T) {
	fam, err := ScenarioFamilyByName("table4")
	if err != nil {
		t.Fatal(err)
	}
	runs := []ScenarioRun{{Spec: fam.Specs()[0]}}
	sc := Scale{Name: "test", Generations: 2, Rounds: 10, Repetitions: 1}

	s := NewSession(WithDefaultSeed(99))
	defer s.Close()
	j, err := s.Submit(context.Background(), ScenariosSpec{Runs: runs, Defaults: sc, Opts: RunOptions{Parallelism: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	viaSubmit := j.Result().([]*CaseResult)

	plain := NewSession()
	defer plain.Close()
	explicit, err := plain.RunScenarios(context.Background(), runs, sc, RunOptions{Seed: 99, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaSubmit[0].CoopMean, explicit[0].CoopMean) {
		t.Error("Submit path ignored the session's default seed")
	}
}

// TestJobRetentionEvictsOldTerminalJobs pins the daemon-critical bound:
// finished jobs beyond the retention cap drop out of lookup so a
// long-lived session's memory stays bounded.
func TestJobRetentionEvictsOldTerminalJobs(t *testing.T) {
	s := NewSession(WithJobRetention(2))
	defer s.Close()
	var jobs []*Job
	for i := 0; i < 5; i++ {
		j, err := s.Submit(context.Background(), EvolveSpec{Config: smallConfig(1, uint64(40+i))})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if got := len(s.Jobs()); got != 2 {
		t.Fatalf("session retains %d jobs, want 2", got)
	}
	if _, ok := s.Job(jobs[0].ID()); ok {
		t.Error("oldest job still reachable past the retention bound")
	}
	if _, ok := s.Job(jobs[4].ID()); !ok {
		t.Error("newest job evicted")
	}
	// Held handles keep working after eviction.
	if jobs[0].State() != JobDone || len(drain(t, jobs[0])) == 0 {
		t.Error("evicted job's handle broke")
	}
}

func TestEventJSONDeterministic(t *testing.T) {
	s := NewSession(WithPoolSize(1))
	defer s.Close()
	run := func() string {
		j, err := s.Submit(context.Background(), EvolveSpec{Config: smallConfig(2, 37)})
		if err != nil {
			t.Fatal(err)
		}
		var buf []byte
		for e := range j.Events() {
			b, err := json.Marshal(e)
			if err != nil {
				t.Fatal(err)
			}
			buf = append(buf, b...)
			buf = append(buf, '\n')
		}
		return string(buf)
	}
	a, b := run(), run()
	// Job IDs differ between submissions; normalize them out.
	if len(a) != len(b) {
		t.Errorf("event NDJSON length differs between identical runs:\n%s\n---\n%s", a, b)
	}
}

func TestPartialSeriesFolding(t *testing.T) {
	var p PartialSeries
	if !p.Empty() {
		t.Error("fresh accumulator not empty")
	}
	add := func(scen, rep, gen int, coop float64) {
		p.Add(Event{Kind: KindGeneration, Generation: &GenerationEvent{
			Scenario: scen, Rep: rep, Gen: gen, Coop: coop, MeanEnvCoop: coop / 2,
		}})
	}
	add(0, 0, 0, 0.2)
	add(0, 1, 0, 0.4)
	add(0, 0, 1, 0.6)
	p.Add(Event{Kind: KindReplicate, Replicate: &ReplicateEvent{Done: 1, Total: 2}}) // ignored
	if p.Empty() || p.LastGeneration() != 1 {
		t.Errorf("lastGen %d", p.LastGeneration())
	}
	got := p.Series(0, false)
	want := []float64{0.3, 0.6}
	if len(got) != len(want) {
		t.Fatalf("series %v, want %v", got, want)
	}
	for i := range want {
		if diff := got[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("series %v, want %v", got, want)
		}
	}
	env := p.Series(0, true)
	if diff := env[0] - 0.15; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("env series %v", env)
	}
	if p.Series(3, false) != nil {
		t.Error("unknown scenario should be nil")
	}
	// Gap fill: generation 3 observed, 2 missing.
	add(1, 0, 0, 0.1)
	add(1, 0, 3, 0.5)
	s1 := p.Series(1, false)
	if !reflect.DeepEqual(s1, []float64{0.1, 0.1, 0.1, 0.5}) {
		t.Errorf("gap-filled series %v", s1)
	}
}
