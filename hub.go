package adhocga

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"sort"
	"sync"
	"time"
)

// The streaming hub. Every Job owns one: a single producer (the spec's run
// goroutine) appends events into a fixed-capacity ring buffer with an
// incrementally-compacted snapshot (the latest generation/islands/churn
// event per stream, plus the latest replicate and the terminal event), and
// any number of subscribers follow through bounded send channels with an
// explicit backpressure policy. This replaces the per-subscriber
// full-replay append-only log: a job's event memory is bounded by the ring
// regardless of how long it runs, and a slow reader can never stall the
// producer past the configured deadline — it is either resynced from the
// snapshot (live viewers) or evicted (archival readers that stopped
// draining).
//
// Determinism contract: event contents, Seq numbering, and emission order
// are exactly what the append-only log produced. A replay subscription on
// a finished job whose total event count fits the ring is byte-identical
// to the historical full replay (the NDJSON goldens pin this); a longer
// job replays as compacted snapshot + ring tail — same final state, gaps
// in Seq where compaction dropped superseded per-stream events.

// Hub sizing defaults, applied by HubConfig.withDefaults.
const (
	// DefaultRingSize is the default number of events a job retains for
	// replay and slow-subscriber catch-up.
	DefaultRingSize = 1024
	// DefaultSubscriberBuffer is the default capacity of each
	// subscriber's send channel.
	DefaultSubscriberBuffer = 64
	// DefaultBlockDeadline is the default longest a producer waits for a
	// BlockWithDeadline subscriber before evicting it.
	DefaultBlockDeadline = time.Second
)

// HubConfig sizes a job's streaming hub. The zero value means "all
// defaults"; fields are independent.
type HubConfig struct {
	// RingSize is the number of events retained in the ring buffer. The
	// ring bounds both replay depth and per-job event memory; it grows
	// geometrically up to this cap, so short jobs stay small. ≤0 means
	// DefaultRingSize.
	RingSize int
	// SubscriberBuffer is each subscriber's send-channel capacity —
	// the slack a consumer gets before its backpressure policy engages.
	// ≤0 means DefaultSubscriberBuffer.
	SubscriberBuffer int
	// BlockDeadline is the longest one append waits for a
	// BlockWithDeadline subscriber whose unread events would be
	// overwritten; past it the laggard is evicted and the producer moves
	// on. ≤0 means DefaultBlockDeadline.
	BlockDeadline time.Duration
}

func (c HubConfig) withDefaults() HubConfig {
	if c.RingSize <= 0 {
		c.RingSize = DefaultRingSize
	}
	if c.SubscriberBuffer <= 0 {
		c.SubscriberBuffer = DefaultSubscriberBuffer
	}
	if c.BlockDeadline <= 0 {
		c.BlockDeadline = DefaultBlockDeadline
	}
	return c
}

// Backpressure is a subscriber's policy for the moment the producer laps
// it: the ring is full and the next append would overwrite events the
// subscriber has not received yet.
type Backpressure int

const (
	// BlockWithDeadline makes the producer wait (up to the hub's
	// BlockDeadline) for the subscriber to advance before overwriting its
	// unread events, then evicts it with ErrSlowSubscriber if it still
	// has not moved. This is the archival policy: the NDJSON event path
	// and the CLIs use it so an actively-draining consumer sees every
	// event with no gaps.
	BlockWithDeadline Backpressure = iota
	// DropResync never blocks the producer: a lapped subscriber skips
	// ahead — it receives the compacted snapshot of the range it missed
	// (latest event per stream, original Seq numbers) and resumes from
	// the oldest ring entry. This is the live-viewer policy: SSE and
	// WebSocket watchers stay current instead of stalling the job.
	DropResync
	// EvictSlow never blocks and never resyncs: a lapped subscriber is
	// evicted immediately with ErrSlowSubscriber. For viewers that would
	// rather reconnect than consume a gap.
	EvictSlow
)

// ErrSlowSubscriber is the terminal error of a subscription evicted by
// backpressure: the consumer stopped draining and its policy forbade
// skipping ahead.
var ErrSlowSubscriber = errors.New("adhocga: subscriber evicted: not draining within the backpressure deadline")

// SubscribeOptions configure one Job.Subscribe call. The zero value is the
// archival subscription: replay from the oldest retained event with the
// BlockWithDeadline policy.
type SubscribeOptions struct {
	// From is the first sequence number to deliver (0 = from the start).
	// Resuming after the last event a client saw (SSE Last-Event-ID,
	// WebSocket ?after=) means From = lastSeen+1. Events already
	// compacted out of the ring are delivered as the snapshot of the
	// missed range.
	From int
	// Live skips history: the subscriber first receives the current
	// compacted snapshot (the latest event per stream so far) and then
	// follows new events as they are emitted. From is ignored.
	Live bool
	// Policy is the backpressure policy; the zero value is
	// BlockWithDeadline.
	Policy Backpressure
	// Buffer overrides the hub's per-subscriber send-channel capacity
	// for this subscription; ≤0 uses the hub default.
	Buffer int
}

// Subscription is one subscriber's handle: receive from C until it closes,
// then ask Err why. All methods are safe for concurrent use.
type Subscription struct {
	// C delivers the subscription's events in Seq order. It is closed
	// after the terminal KindDone event, on detach (context cancelled),
	// or on eviction.
	C <-chan Event

	hub *hub
	sub *subscriber
}

// Err reports how the subscription ended: nil while live or after a
// complete stream (terminal event delivered), ErrSlowSubscriber after a
// backpressure eviction, the context's error after a detach.
func (s *Subscription) Err() error {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	return s.sub.err
}

// Resyncs returns how many times the subscription fell behind the ring and
// skipped ahead via the snapshot (always 0 for BlockWithDeadline).
func (s *Subscription) Resyncs() int {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	return s.sub.resyncs
}

// Dropped returns how many events the subscription skipped over across all
// resyncs (events superseded in the snapshot it received instead).
func (s *Subscription) Dropped() int {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	return s.sub.dropped
}

// StreamStats is a job hub's observability counters.
type StreamStats struct {
	// Emitted is the total number of events the job has emitted (Seq of
	// the next event). Retained is how many of them are still replayable
	// from snapshot + ring.
	Emitted  int
	Retained int
	// Overwritten is how many emitted events the ring has lapped over —
	// they survive only as compacted snapshot entries. Emitted minus
	// Overwritten is the ring occupancy.
	Overwritten int
	// Subscribers is the number of currently-attached subscriptions.
	Subscribers int
	// Resyncs and Evictions count backpressure actions over the job's
	// lifetime.
	Resyncs   int
	Evictions int
	// MaxStall is the longest a single append waited on BlockWithDeadline
	// subscribers — bounded by HubConfig.BlockDeadline (+ scheduling
	// noise) by construction.
	MaxStall time.Duration
}

// streamKey identifies one compaction stream: the latest event per key is
// what the snapshot keeps. Generation/islands/churn events compact per
// (scenario, rep); replicate and done are job-wide.
type streamKey struct {
	kind     EventKind
	scenario int
	rep      int
}

func compactionKey(e Event) streamKey {
	switch e.Kind {
	case KindGeneration:
		return streamKey{kind: e.Kind, scenario: e.Generation.Scenario, rep: e.Generation.Rep}
	case KindIslands:
		return streamKey{kind: e.Kind, scenario: e.Islands.Scenario, rep: e.Islands.Rep}
	case KindChurn:
		return streamKey{kind: e.Kind, scenario: e.Churn.Scenario, rep: e.Churn.Rep}
	default: // replicate, done
		return streamKey{kind: e.Kind}
	}
}

// subscriber is the hub-internal state of one subscription.
type subscriber struct {
	out    chan Event
	policy Backpressure
	quit   chan struct{} // closed on eviction; wakes a blocked pump send

	cursor  int  // next Seq to deliver
	syncTo  int  // when > cursor: snapshot the range [cursor, syncTo) then jump
	initial bool // the pending sync is the live-attach one, not a fall-behind
	err     error
	resyncs int
	dropped int
}

// hub is a job's broadcast core. All mutable state is guarded by mu; the
// producer appends under it, subscriber pumps read batches under it and
// send outside it.
type hub struct {
	cfg    HubConfig
	jobID  string
	logger *slog.Logger

	mu       sync.Mutex
	ring     []Event  // circular; slot of seq s is s % len(ring); grows to cfg.RingSize
	frames   [][]byte // lazily-filled JSON encoding of the same slot; nil = not encoded yet
	framesOn bool     // frame() has cached at least once; until then append skips invalidation
	start    int      // Seq of the oldest retained ring event
	total    int      // Seq of the next event (== events emitted)
	snap     map[streamKey]Event
	closed   bool          // terminal event appended; no more appends
	notify   chan struct{} // closed+replaced on every append
	progress chan struct{} // closed+replaced when a guarded subscriber advances or detaches

	subs      map[*subscriber]struct{}
	guarded   map[*subscriber]struct{} // the non-DropResync subset the producer must check
	resyncs   int
	evictions int
	maxStall  time.Duration
}

func newHub(jobID string, cfg HubConfig, logger *slog.Logger) *hub {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	return &hub{
		cfg:      cfg.withDefaults(),
		jobID:    jobID,
		logger:   logger,
		snap:     map[streamKey]Event{},
		notify:   make(chan struct{}),
		progress: make(chan struct{}),
		subs:     map[*subscriber]struct{}{},
		guarded:  map[*subscriber]struct{}{},
	}
}

// growLocked enlarges the ring geometrically toward the configured cap,
// re-laying events out so slot(seq) = seq % len(ring) keeps holding.
func (h *hub) growLocked() {
	next := 2 * len(h.ring)
	if next < 64 {
		next = 64
	}
	if next > h.cfg.RingSize {
		next = h.cfg.RingSize
	}
	grown := make([]Event, next)
	grownFrames := make([][]byte, next)
	for seq := h.start; seq < h.total; seq++ {
		grown[seq%next] = h.ring[seq%len(h.ring)]
		grownFrames[seq%next] = h.frames[seq%len(h.ring)]
	}
	h.ring = grown
	h.frames = grownFrames
}

// append is the producer path: stamp, retain, compact, wake subscribers.
// terminal additionally seals the hub so nothing can be emitted after the
// done event. Appends on a sealed hub are dropped (matching the old
// emit-after-terminal semantics). The only blocking append can do is the
// guarded-subscriber wait, bounded by cfg.BlockDeadline.
func (h *hub) append(e Event, terminal bool) {
	var (
		timer     *time.Timer
		waitStart time.Time
		timedOut  bool
	)
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			return
		}
		if h.total-h.start == len(h.ring) && len(h.ring) < h.cfg.RingSize {
			h.growLocked()
		}
		// With the ring at capacity this append overwrites seq h.start;
		// guarded subscribers still sitting exactly there get their
		// policy applied. (A guarded cursor already below h.start means
		// the subscriber attached late; its pump resyncs it, the
		// producer owes it nothing.)
		var blocker *subscriber
		if h.total-h.start == len(h.ring) {
			for s := range h.guarded {
				if s.err == nil && s.cursor == h.start {
					if s.policy == EvictSlow || timedOut {
						h.evictLocked(s)
					} else {
						blocker = s
					}
				}
			}
		}
		if blocker != nil {
			progress := h.progress
			h.mu.Unlock()
			if timer == nil {
				waitStart = time.Now()
				timer = time.NewTimer(h.cfg.BlockDeadline)
			}
			select {
			case <-progress:
			case <-timer.C:
				timedOut = true
			}
			continue
		}
		if timer != nil {
			if stall := time.Since(waitStart); stall > h.maxStall {
				h.maxStall = stall
			}
		}
		e.Seq = h.total
		e.Job = h.jobID
		if h.total-h.start == len(h.ring) {
			h.start++
		}
		h.ring[e.Seq%len(h.ring)] = e
		// The slot's cached frame (if any) encoded the overwritten event;
		// the new occupant is encoded lazily on first fan-out. Until the
		// first frame() call every entry is nil (framesOn false), so a job
		// nobody streams never touches the cache array from the emit path.
		if h.framesOn {
			h.frames[e.Seq%len(h.ring)] = nil
		}
		h.total++
		h.snap[compactionKey(e)] = e
		if terminal {
			h.closed = true
		}
		close(h.notify)
		h.notify = make(chan struct{})
		h.mu.Unlock()
		return
	}
}

// evictLocked applies backpressure eviction to one subscriber.
func (h *hub) evictLocked(s *subscriber) {
	s.err = ErrSlowSubscriber
	close(s.quit)
	h.evictions++
	h.logger.Warn("subscriber evicted by backpressure",
		"job", h.jobID, "cursor", s.cursor, "evictions", h.evictions)
	// Leave removal from the maps to the pump, which owns the exit path;
	// the err guard keeps the producer from re-evicting meanwhile.
}

// removeLocked detaches a subscriber and wakes a producer that may have
// been waiting on it.
func (h *hub) removeLocked(s *subscriber) {
	if _, ok := h.subs[s]; !ok {
		return
	}
	delete(h.subs, s)
	delete(h.guarded, s)
	close(h.progress)
	h.progress = make(chan struct{})
}

func (h *hub) remove(s *subscriber) {
	h.mu.Lock()
	h.removeLocked(s)
	h.mu.Unlock()
}

// fail records a detach reason (context cancellation) and removes.
func (h *hub) fail(s *subscriber, err error) {
	h.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	h.removeLocked(s)
	h.mu.Unlock()
}

// advance moves a subscriber's cursor past one delivered ring event and,
// for guarded policies, signals the producer that space may have opened.
func (h *hub) advance(s *subscriber) {
	h.mu.Lock()
	s.cursor++
	if s.policy != DropResync {
		close(h.progress)
		h.progress = make(chan struct{})
	}
	h.mu.Unlock()
}

// snapRangeLocked returns the compacted snapshot of the Seq range
// [lo, hi): the latest retained event per stream, in Seq order.
func (h *hub) snapRangeLocked(lo, hi int) []Event {
	var out []Event
	for _, e := range h.snap {
		if e.Seq >= lo && e.Seq < hi {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// subscribe attaches a new subscription and starts its pump.
func (h *hub) subscribe(ctx context.Context, opts SubscribeOptions) *Subscription {
	buf := opts.Buffer
	if buf <= 0 {
		buf = h.cfg.SubscriberBuffer
	}
	s := &subscriber{
		out:    make(chan Event, buf),
		policy: opts.Policy,
		quit:   make(chan struct{}),
	}
	h.mu.Lock()
	if opts.Live {
		// The attach-time snapshot jump; at total == 0 there is no history
		// to jump over, so a later lap is a real resync, not this one.
		s.syncTo = h.total
		s.initial = h.total > 0
	} else if opts.From > 0 {
		s.cursor = opts.From
		if s.cursor > h.total {
			s.cursor = h.total
		}
	}
	h.subs[s] = struct{}{}
	if s.policy != DropResync {
		h.guarded[s] = struct{}{}
	}
	h.mu.Unlock()
	go h.pump(ctx, s)
	return &Subscription{C: s.out, hub: h, sub: s}
}

// pump is one subscription's delivery goroutine: batch events out of the
// ring (or the snapshot, when catching up across a gap) under the lock,
// send them outside it, exit after the terminal event.
func (h *hub) pump(ctx context.Context, s *subscriber) {
	defer close(s.out)
	for {
		h.mu.Lock()
		if s.err != nil { // evicted by the producer
			h.removeLocked(s)
			h.mu.Unlock()
			return
		}
		if s.cursor < h.start && s.syncTo <= s.cursor {
			// Lapped (or attached below the retained range): resync via
			// the snapshot of what was missed.
			s.syncTo = h.start
			if !s.initial {
				s.resyncs++
				h.resyncs++
			}
		}
		var batch []Event
		fromRing := false
		if s.syncTo > s.cursor {
			batch = h.snapRangeLocked(s.cursor, s.syncTo)
			if !s.initial {
				s.dropped += s.syncTo - s.cursor - len(batch)
			}
			s.initial = false
			s.cursor = s.syncTo
			if len(batch) == 0 {
				// Every event in the missed range was superseded by a
				// later one still in the ring: nothing to deliver for the
				// gap itself — go around for the ring tail.
				h.mu.Unlock()
				continue
			}
		} else if n := h.total - s.cursor; n > 0 {
			// Bound the copy a parked pump can hold: one send channel's
			// worth per round trip keeps per-subscriber memory independent
			// of the ring size.
			if max := cap(s.out); n > max {
				n = max
			}
			fromRing = true
			batch = make([]Event, n)
			for i := range batch {
				batch[i] = h.ring[(s.cursor+i)%len(h.ring)]
			}
		}
		closed := h.closed
		notify := h.notify
		h.mu.Unlock()

		if len(batch) == 0 {
			if closed {
				// Subscribed at or past the end of a finished stream.
				h.remove(s)
				return
			}
			select {
			case <-notify:
			case <-ctx.Done():
				h.fail(s, ctx.Err())
				return
			case <-s.quit:
				h.remove(s)
				return
			}
			continue
		}
		for _, e := range batch {
			select {
			case s.out <- e:
				if fromRing {
					h.advance(s)
				}
				if e.Kind == KindDone {
					h.remove(s)
					return
				}
			case <-ctx.Done():
				h.fail(s, ctx.Err())
				return
			case <-s.quit:
				h.remove(s)
				return
			}
		}
	}
}

// frame returns the JSON encoding of one delivered event, shared across
// subscribers: the first fan-out of an event marshals it and caches the
// bytes in the ring-parallel frame slot; every later subscriber of the
// same event gets the cached bytes back. Events already lapped out of the
// ring (or snapshot resync deliveries of them) fall back to a plain
// marshal. Callers must treat the returned slice as immutable.
//
// The cache keeps the producer's append marshal-free: encoding happens on
// the first subscriber's delivery path, where the cost was already being
// paid once per subscriber before the cache existed.
func (h *hub) frame(e Event) ([]byte, error) {
	h.mu.Lock()
	if len(h.ring) > 0 && e.Seq >= h.start && e.Seq < h.total {
		i := e.Seq % len(h.ring)
		if h.ring[i].Seq == e.Seq {
			if b := h.frames[i]; b != nil {
				h.mu.Unlock()
				return b, nil
			}
			h.mu.Unlock()
			b, err := json.Marshal(e)
			if err != nil {
				return nil, err
			}
			h.mu.Lock()
			// Re-check: the producer may have lapped the slot while we
			// marshalled. Racing subscribers encode the same event value,
			// so a double store is byte-identical and harmless. framesOn
			// flips with the first store — the invariant the emit path's
			// skip relies on is "framesOn false ⇒ every frame slot nil".
			if len(h.ring) > 0 && h.ring[e.Seq%len(h.ring)].Seq == e.Seq {
				h.framesOn = true
				h.frames[e.Seq%len(h.ring)] = b
			}
			h.mu.Unlock()
			return b, nil
		}
	}
	h.mu.Unlock()
	return json.Marshal(e)
}

// total returns the number of events emitted so far.
func (h *hub) totalEvents() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// retained returns a copy of every event still replayable, in Seq order:
// the compacted snapshot of the evicted range followed by the ring.
func (h *hub) retained() []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := h.snapRangeLocked(0, h.start)
	for seq := h.start; seq < h.total; seq++ {
		out = append(out, h.ring[seq%len(h.ring)])
	}
	return out
}

// stats snapshots the hub's counters.
func (h *hub) stats() StreamStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	retained := h.total - h.start
	for _, e := range h.snap {
		if e.Seq < h.start {
			retained++
		}
	}
	return StreamStats{
		Emitted:     h.total,
		Retained:    retained,
		Overwritten: h.start,
		Subscribers: len(h.subs),
		Resyncs:     h.resyncs,
		Evictions:   h.evictions,
		MaxStall:    h.maxStall,
	}
}
