package adhocga

import (
	"context"
	"reflect"
	"testing"
)

// TestSessionReusesEngineAcrossSubmits pins the session-scoped engine
// arena: the second sequential Evolve submission must reuse the first
// job's parked engine (one recorded reuse) and still produce exactly the
// result a fresh session produces for the same configuration.
func TestSessionReusesEngineAcrossSubmits(t *testing.T) {
	cfgA := smallConfig(3, 41)
	cfgB := smallConfig(5, 43)

	s := NewSession(WithPoolSize(1))
	defer s.Close()
	if _, err := s.Evolve(context.Background(), cfgA); err != nil {
		t.Fatal(err)
	}
	if got := s.EngineReuses(); got != 0 {
		t.Fatalf("reuses after first submit = %d, want 0", got)
	}
	warm, err := s.Evolve(context.Background(), cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.EngineReuses(); got != 1 {
		t.Fatalf("reuses after second submit = %d, want 1", got)
	}

	fresh := NewSession(WithPoolSize(1))
	defer fresh.Close()
	want, err := fresh.Evolve(context.Background(), cfgB)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(warm.CoopSeries, want.CoopSeries) ||
		!reflect.DeepEqual(warm.MeanEnvCoopSeries, want.MeanEnvCoopSeries) {
		t.Errorf("reused-engine run diverged from fresh session:\nwarm:  %v\nfresh: %v",
			warm.CoopSeries, want.CoopSeries)
	}
	for i := range want.FinalStrategies {
		if warm.FinalStrategies[i].Genome().Compact() != want.FinalStrategies[i].Genome().Compact() {
			t.Fatalf("final strategy %d differs on reused engine", i)
		}
	}
}

// TestSessionEnginePoolBounded: parked engines never exceed the session's
// pool size, and results from concurrent-capacity submissions stay
// independent of parking order.
func TestSessionEnginePoolBounded(t *testing.T) {
	s := NewSession(WithPoolSize(2))
	defer s.Close()
	for i := 0; i < 5; i++ {
		if _, err := s.Evolve(context.Background(), smallConfig(2, uint64(50+i))); err != nil {
			t.Fatal(err)
		}
	}
	s.engMu.Lock()
	parked := len(s.engines)
	s.engMu.Unlock()
	if parked > s.PoolSize() {
		t.Errorf("parked engines %d exceed pool size %d", parked, s.PoolSize())
	}
	if got := s.EngineReuses(); got != 4 {
		t.Errorf("reuses = %d, want 4 (every submit after the first)", got)
	}
}
