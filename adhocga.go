package adhocga

import (
	"context"
	"io"

	"adhocga/internal/baselines"
	"adhocga/internal/bitstring"
	"adhocga/internal/core"
	"adhocga/internal/dynamics"
	"adhocga/internal/experiment"
	"adhocga/internal/ga"
	"adhocga/internal/game"
	"adhocga/internal/ipdrp"
	"adhocga/internal/island"
	"adhocga/internal/league"
	"adhocga/internal/network"
	"adhocga/internal/rng"
	"adhocga/internal/scenario"
	"adhocga/internal/strategy"
	"adhocga/internal/tournament"
)

// Strategy is the paper's 13-bit forwarding strategy (§3.3): twelve
// (trust, activity) decisions plus an unknown-node decision.
type Strategy = strategy.Strategy

// TrustLevel is the four-level trust scale of §3.1.
type TrustLevel = strategy.TrustLevel

// ActivityLevel is the three-level activity scale of §3.2.
type ActivityLevel = strategy.ActivityLevel

// Decision is a forward/discard decision.
type Decision = strategy.Decision

// Decision and level constants re-exported for callers of Strategy.Decide.
const (
	Forward = strategy.Forward
	Discard = strategy.Discard

	Trust0 = strategy.Trust0
	Trust1 = strategy.Trust1
	Trust2 = strategy.Trust2
	Trust3 = strategy.Trust3

	ActivityLow    = strategy.ActivityLow
	ActivityMedium = strategy.ActivityMedium
	ActivityHigh   = strategy.ActivityHigh
)

// Genome is a strategy genome: the 13-bit vector of §3.3 (Fig 1c) the
// genetic algorithm evolves.
type Genome = bitstring.Bits

// Individual pairs a genome with the fitness measured for it (eq. 1).
type Individual = ga.Individual

// NewStrategy wraps a 13-bit genome as a Strategy. The strategy shares the
// genome's storage; Clone first if the genome keeps evolving.
func NewStrategy(g Genome) Strategy { return strategy.New(g) }

// ParseStrategy decodes the paper's strategy notation, with or without
// grouping spaces: "010 101 101 111 1" or "0101011011111".
func ParseStrategy(s string) (Strategy, error) { return strategy.Parse(s) }

// RandomStrategy returns a uniformly random strategy drawn from a
// deterministic stream seeded with seed.
func RandomStrategy(seed uint64) Strategy { return strategy.Random(rng.New(seed)) }

// AllForward returns the fully cooperative strategy.
func AllForward() Strategy { return strategy.AllForward() }

// AllDiscard returns the fully selfish strategy (CSN behavior).
func AllDiscard() Strategy { return strategy.AllDiscard() }

// Environment is one tournament environment: a name and a CSN count
// (Table 1).
type Environment = tournament.Environment

// PaperEnvironments returns TE1–TE4 from Table 1.
func PaperEnvironments() []Environment { return tournament.PaperEnvironments() }

// PathMode bundles the hop-count and alternate-path distributions of §6.1.
type PathMode = network.PathMode

// ShorterPaths returns the SP path mode (Table 2, left).
func ShorterPaths() PathMode { return network.ShorterPaths() }

// LongerPaths returns the LP path mode (Table 2, right).
func LongerPaths() PathMode { return network.LongerPaths() }

// EvolutionConfig parameterizes one evolutionary run; see
// DefaultEvolutionConfig and the core package for field semantics.
type EvolutionConfig = core.Config

// GenerationStats is the per-generation snapshot passed to the
// OnGeneration hook.
type GenerationStats = core.GenerationStats

// PopulationStats summarizes a generation's fitness distribution and
// genome diversity (also used by the IPDRP substrate's hook).
type PopulationStats = ga.PopulationStats

// EvolutionResult holds a run's cooperation history and final population.
type EvolutionResult = core.Result

// DefaultEvolutionConfig returns the paper's §6.1 parameterization (N=100,
// T=50, R=300, 500 generations) for the given environments and path mode.
// Scale Generations and Eval.Tournament.Rounds down for quick runs.
func DefaultEvolutionConfig(envs []Environment, mode PathMode, seed uint64) EvolutionConfig {
	return core.PaperConfig(envs, mode, seed)
}

// Evolve runs one evolutionary experiment.
//
// Deprecated: use Session.Evolve (or Submit an EvolveSpec) for context
// cancellation, shared pooling, and streamed events. This wrapper
// delegates to DefaultSession and is bit-identical to the Session path.
func Evolve(cfg EvolutionConfig) (*EvolutionResult, error) {
	return DefaultSession().Evolve(context.Background(), cfg)
}

// IslandConfig parameterizes the island-model evolution engine: the
// population of EvolutionConfig is sharded into Count subpopulations
// evolved concurrently, with periodic migration of elite genomes over a
// pluggable topology. See the island package docs for the determinism
// contract.
type IslandConfig = island.Config

// IslandResult is the outcome of an island-model run: the aggregate view
// in the serial Result shape plus per-island convergence traces and the
// cross-island champion.
type IslandResult = island.Result

// IslandTrace is one island's per-generation convergence history.
type IslandTrace = island.Trace

// IslandGenerationStats is the per-generation snapshot passed to
// IslandConfig.OnGeneration: run-wide cooperation plus per-island fitness
// and diversity.
type IslandGenerationStats = island.GenerationStats

// IslandTopology selects which islands exchange migrants.
type IslandTopology = island.Topology

// IslandReplacement selects which residents incoming migrants evict.
type IslandReplacement = island.Replacement

// Migration topologies and replacement policies for IslandConfig.
const (
	TopologyRing           = island.Ring
	TopologyFullyConnected = island.FullyConnected
	TopologyRandomPairs    = island.RandomPairs

	ReplaceWorst  = island.ReplaceWorst
	ReplaceRandom = island.ReplaceRandom
)

// EvolveIslands runs one island-model evolutionary experiment. A 1-island
// configuration is bit-identical to Evolve on the same EvolutionConfig.
//
// Deprecated: use Session.EvolveIslands (or Submit an IslandsSpec). This
// wrapper delegates to DefaultSession and is bit-identical to the Session
// path.
func EvolveIslands(cfg IslandConfig) (*IslandResult, error) {
	return DefaultSession().EvolveIslands(context.Background(), cfg)
}

// DynamicsConfig parameterizes the environment-perturbation layer
// (internal/dynamics): population churn with naive immigrants and
// identity turnover, mobility-driven route-length drift, and a cohort of
// Byzantine adversaries (free-riders, gossip liars, on-off attackers)
// seated in every tournament. Attach it to EvolutionConfig.Dynamics; a
// nil or all-zero configuration keeps the run bit-identical to the
// static reproduction.
type DynamicsConfig = dynamics.Config

// NodeAdversary tags a Byzantine player's behavior.
type NodeAdversary = game.Adversary

// Byzantine behaviors for DynamicsConfig cohorts.
const (
	AdversaryNone      = game.AdvNone
	AdversaryFreeRider = game.AdvFreeRider
	AdversaryLiar      = game.AdvLiar
	AdversaryOnOff     = game.AdvOnOff
)

// MixedPaths returns a path mode whose hop-length distribution linearly
// blends SP (alpha 0) and LP (alpha 1) — the route-length landscape the
// dynamics rewiring walk moves through.
func MixedPaths(alpha float64) PathMode { return network.MixedPaths(alpha) }

// RecoverySummary aggregates cooperation dips and recovery times after
// churn barriers; CaseResult.Recovery carries one for churning scenarios.
type RecoverySummary = experiment.RecoverySummary

// SummarizeRecovery scans a per-generation cooperation series for the
// effect of perturbation barriers at the given interval. tol ≤ 0 uses the
// default tolerance.
func SummarizeRecovery(series []float64, interval int, tol float64) *RecoverySummary {
	return experiment.SummarizeRecovery(series, interval, tol)
}

// Case is one of the paper's four evaluation cases (Table 4).
type Case = experiment.Case

// Cases returns the four evaluation cases of Table 4.
func Cases() []Case { return experiment.Cases() }

// CaseByID returns the evaluation case with id 1–4.
func CaseByID(id int) (Case, error) { return experiment.CaseByID(id) }

// Scale selects the computational budget of a reproduction run.
type Scale = experiment.Scale

// Standard scales: the paper's full budget, a minutes-scale default, and a
// seconds-scale smoke setting.
var (
	ScaleSmoke   = experiment.Smoke
	ScaleDefault = experiment.Default
	ScalePaper   = experiment.PaperScale
)

// CaseResult aggregates one evaluation case over all replications.
type CaseResult = experiment.CaseResult

// RunOptions tune RunCase.
type RunOptions = experiment.Options

// RunCase reproduces one evaluation case at the given scale, fanning
// replications out over a worker pool. Deterministic for a fixed seed.
//
// Deprecated: use Session.RunCase (or Submit a CaseSpec). This wrapper
// delegates to DefaultSession and is bit-identical to the Session path.
func RunCase(c Case, sc Scale, opts RunOptions) (*CaseResult, error) {
	return DefaultSession().RunCase(context.Background(), c, sc, opts)
}

// ScenarioSpec declaratively describes one evolutionary experiment:
// environments, path mode, tournament/GA parameters, scale, and seed
// policy. Specs are JSON-serializable; zero-valued fields fall back to
// the paper's §6.1 parameterization and the run's Scale.
type ScenarioSpec = scenario.Spec

// ScenarioEnv is one environment of a scenario (name + CSN count).
type ScenarioEnv = scenario.EnvSpec

// ScenarioGA overrides genetic-algorithm parameters in a scenario.
type ScenarioGA = scenario.GASpec

// ScenarioIslands configures the island-model engine in a scenario (the
// JSON "islands" block).
type ScenarioIslands = scenario.IslandSpec

// ScenarioDynamics configures the environment-perturbation layer in a
// scenario (the JSON "dynamics" block).
type ScenarioDynamics = scenario.DynamicsSpec

// ScenarioGossip enables second-hand reputation exchange in a scenario
// (the JSON "gossip" block).
type ScenarioGossip = scenario.GossipSpec

// ScenarioFamily is a named generator of related scenarios from the
// built-in registry (table4, csn-grid, tournament-size, mixed-env).
type ScenarioFamily = scenario.Family

// ScenarioRun pairs a scenario with the fallback master seed for its
// replicate streams.
type ScenarioRun = experiment.ScenarioRun

// ScenarioFamilies returns the registered scenario families.
func ScenarioFamilies() []ScenarioFamily { return scenario.Families() }

// ScenarioFamilyByName resolves a registered scenario family.
func ScenarioFamilyByName(name string) (ScenarioFamily, error) { return scenario.FamilyByName(name) }

// LoadScenarios reads one scenario spec or a JSON array of specs.
func LoadScenarios(r io.Reader) ([]ScenarioSpec, error) { return scenario.Load(r) }

// LoadScenarioFile loads scenario specs from a JSON file.
func LoadScenarioFile(path string) ([]ScenarioSpec, error) { return scenario.LoadFile(path) }

// SaveScenarios writes scenario specs as JSON in a shape LoadScenarios
// accepts.
func SaveScenarios(w io.Writer, specs []ScenarioSpec) error { return scenario.Save(w, specs) }

// RunScenarios runs a batch of scenarios over one shared worker pool —
// every (scenario × replicate) pair is one work unit in a single queue —
// and aggregates each scenario into a CaseResult, in input order.
// Deterministic for fixed seeds regardless of parallelism.
//
// Deprecated: use Session.RunScenarios (or Submit a ScenariosSpec). This
// wrapper delegates to DefaultSession and is bit-identical to the Session
// path.
func RunScenarios(runs []ScenarioRun, defaults Scale, opts RunOptions) ([]*CaseResult, error) {
	return DefaultSession().RunScenarios(context.Background(), runs, defaults, opts)
}

// SweepPoint is one sample of a CSN sweep: the selfish-node count and the
// evolved cooperation level.
type SweepPoint = experiment.SweepPoint

// CSNSweep traces evolved cooperation against the number of constantly
// selfish nodes in a 50-player tournament — the curve the paper samples at
// 0, 10, 25 and 30 (Table 1).
//
// Deprecated: use Session.CSNSweep (or Submit a SweepSpec). This wrapper
// delegates to DefaultSession and is bit-identical to the Session path.
func CSNSweep(csnCounts []int, mode PathMode, sc Scale, opts RunOptions) ([]SweepPoint, error) {
	return DefaultSession().CSNSweep(context.Background(), csnCounts, mode, sc, opts)
}

// Profile is a named fixed (non-evolved) strategy for baseline mixes.
type Profile = baselines.Profile

// MixConfig describes a fixed-population tournament; MixResult reports its
// outcome.
type (
	MixConfig = baselines.MixConfig
	MixResult = baselines.MixResult
	MixGroup  = baselines.Group
)

// Built-in baseline profiles.
var (
	ProfileAllCooperate    = baselines.AllCooperate
	ProfileAllDefect       = baselines.AllDefect
	ProfileTrustThreshold1 = baselines.TrustThreshold1
	ProfileTrustThreshold2 = baselines.TrustThreshold2
)

// RunMix plays one tournament with a fixed population of profiles and CSN.
//
// Deprecated: use Session.RunMix (or Submit a MixSpec). This wrapper
// delegates to DefaultSession and is bit-identical to the Session path.
func RunMix(cfg MixConfig) (*MixResult, error) {
	return DefaultSession().RunMix(context.Background(), cfg)
}

// GameConfig holds the game rules (payoffs, trust table, activity band).
type GameConfig = game.Config

// DefaultGameConfig returns the paper's rules: the Fig 2a payoff tables,
// the Fig 1b trust lookup, unknown-node trust 1, ±20% activity band.
func DefaultGameConfig() GameConfig { return game.DefaultConfig() }

// IPDRPConfig parameterizes the Iterated Prisoner's Dilemma under Random
// Pairing substrate [12] that the paper's game model generalizes.
type IPDRPConfig = ipdrp.Config

// IPDRPResult holds an IPDRP run's cooperation trajectory.
type IPDRPResult = ipdrp.Result

// DefaultIPDRPConfig mirrors the scale of Namikawa and Ishibuchi's
// experiments (population 100, roulette selection).
func DefaultIPDRPConfig(seed uint64) IPDRPConfig { return ipdrp.DefaultConfig(seed) }

// RunIPDRP evolves a population of 5-bit IPDRP strategies.
//
// Deprecated: use Session.RunIPDRP (or Submit an IPDRPSpec). This wrapper
// delegates to DefaultSession and is bit-identical to the Session path.
func RunIPDRP(cfg IPDRPConfig) (*IPDRPResult, error) {
	return DefaultSession().RunIPDRP(context.Background(), cfg)
}

// Checkpoint is a champion checkpoint observed by the engine's
// OnCheckpoint hook: the best genome of one generation with its fitness
// context (see EvolutionConfig.CheckpointInterval).
type Checkpoint = core.Checkpoint

// Champion is one hall-of-fame record: a checkpointed best-of-generation
// strategy with its provenance (job, scenario, replicate seed) and
// classification metadata.
type Champion = league.Champion

// ChampionArchive is the durable hall of fame champions are checkpointed
// into (WithChampionArchive) and leagues seat from. Back it with
// OpenChampionArchive for durability or NewChampionArchive for memory.
type ChampionArchive = league.Archive

// NewChampionArchive returns an in-memory champion archive.
func NewChampionArchive() *ChampionArchive { return league.NewMemArchive() }

// OpenChampionArchive opens (or creates) a file-backed champion archive
// in dir, persisted through the jobstore WAL machinery.
func OpenChampionArchive(dir string) (*ChampionArchive, error) { return league.OpenDir(dir) }

// LeagueSeat is one league participant: a named strategy expanded to a
// homogeneous team per match side.
type LeagueSeat = league.Seat

// LeagueConfig parameterizes a direct league run (see RunLeagueTable);
// service and session jobs use LeagueJobSpec instead.
type LeagueConfig = league.Config

// LeagueTable is a league outcome: standings sorted best-first plus the
// head-to-head matrix. Deterministic JSON at a fixed seed.
type LeagueTable = league.Table

// LeagueStanding is one seat's row in a LeagueTable.
type LeagueStanding = league.Standing

// BaselineSeats returns the scripted league seats: all-forward,
// never-forward, and the paper's Table 7 reciprocal winner.
func BaselineSeats() []LeagueSeat { return league.BaselineSeats() }

// RunLeagueTable plays a league directly, outside any session (the
// engine-level entry point; Session.RunLeague is the job-level one).
func RunLeagueTable(cfg LeagueConfig) (*LeagueTable, error) { return league.Run(cfg) }
