package adhocga

// Tests for the streaming hub (hub.go) driven directly through a Job
// handle: replay and resume semantics, the bounded-retention contract,
// each backpressure policy, and a concurrent subscribe/unsubscribe/evict
// stress that the CI race job runs under -race.

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

// testJob returns a Job wired like Session.Submit does, minus the
// session: events are appended directly with emit/finish.
func testJob(cfg HubConfig) *Job {
	j := newJob("job-t", "test", cfg, nil)
	j.cancel = func() {}
	return j
}

func genEvent(rep, gen int) Event {
	return Event{Kind: KindGeneration, Generation: &GenerationEvent{Rep: rep, Gen: gen}}
}

// drain reads a subscription to exhaustion, asserting strictly-increasing
// sequence numbers, and returns the events.
func drainSub(t *testing.T, sub *Subscription) []Event {
	t.Helper()
	var events []Event
	for e := range sub.C {
		if len(events) > 0 && e.Seq <= events[len(events)-1].Seq {
			t.Fatalf("sequence not increasing: %d after %d", e.Seq, events[len(events)-1].Seq)
		}
		events = append(events, e)
	}
	return events
}

func TestHubReplayWithinRing(t *testing.T) {
	j := testJob(HubConfig{})
	for g := 0; g < 10; g++ {
		j.emit(genEvent(0, g))
	}
	j.finish(nil, nil)

	// The zero-value subscription replays everything: 10 generations plus
	// the terminal done, Seq 0..10 with no gaps.
	sub := j.Subscribe(context.Background(), SubscribeOptions{})
	events := drainSub(t, sub)
	if len(events) != 11 {
		t.Fatalf("replayed %d events, want 11", len(events))
	}
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d: replay within ring capacity must be gapless", i, e.Seq)
		}
		if e.Job != "job-t" {
			t.Fatalf("event %d job %q", i, e.Job)
		}
	}
	if events[10].Kind != KindDone {
		t.Errorf("last event %+v, want done", events[10])
	}
	if err := sub.Err(); err != nil {
		t.Errorf("complete replay ended with err %v", err)
	}
}

func TestHubResumeFrom(t *testing.T) {
	j := testJob(HubConfig{})
	for g := 0; g < 10; g++ {
		j.emit(genEvent(0, g))
	}
	j.finish(nil, nil)

	sub := j.Subscribe(context.Background(), SubscribeOptions{From: 5})
	events := drainSub(t, sub)
	if len(events) == 0 || events[0].Seq != 5 {
		t.Fatalf("resume From=5 delivered %+v", events)
	}
	if events[len(events)-1].Kind != KindDone {
		t.Error("resumed stream missing terminal event")
	}

	// Subscribing past the end of a finished stream yields nothing.
	empty := drainSub(t, j.Subscribe(context.Background(), SubscribeOptions{From: 1000}))
	if len(empty) != 0 {
		t.Errorf("From past end delivered %d events", len(empty))
	}
}

func TestHubBoundedRetention(t *testing.T) {
	// A long job on a small ring: memory stays bounded and a late replay
	// gets the compacted snapshot of the evicted range plus the ring tail.
	j := testJob(HubConfig{RingSize: 16})
	const gens, reps = 100, 2
	for g := 0; g < gens; g++ {
		for r := 0; r < reps; r++ {
			j.emit(genEvent(r, g))
		}
	}
	j.finish(nil, nil)

	total := gens*reps + 1
	if got := j.EventCount(); got != total {
		t.Fatalf("EventCount = %d, want %d", got, total)
	}
	retained := j.Snapshot()
	// Bound: at most one snapshot entry per stream (2 generation streams)
	// plus the ring.
	if len(retained) > reps+16 {
		t.Fatalf("retained %d events, want <= %d: retention is not bounded", len(retained), reps+16)
	}
	for i := 1; i < len(retained); i++ {
		if retained[i].Seq <= retained[i-1].Seq {
			t.Fatalf("retained events out of order at %d", i)
		}
	}
	if last := retained[len(retained)-1]; last.Kind != KindDone {
		t.Errorf("retained tail %+v, want done", last)
	}

	// A full replay of the finished job sees exactly the retained view.
	events := drainSub(t, j.Subscribe(context.Background(), SubscribeOptions{}))
	if len(events) != len(retained) {
		t.Fatalf("replay delivered %d events, Snapshot has %d", len(events), len(retained))
	}
	if events[0].Seq == 0 {
		t.Error("replay of a compacted job still starts at seq 0: nothing was evicted?")
	}
	stats := j.StreamStats()
	if stats.Emitted != total || stats.Retained != len(retained) {
		t.Errorf("stats %+v inconsistent with EventCount %d / Snapshot %d", stats, total, len(retained))
	}
}

func TestHubLiveSubscriberResyncsInsteadOfStalling(t *testing.T) {
	// A live DropResync viewer that stops reading gets lapped: it must be
	// skipped ahead via the snapshot — counted in Resyncs/Dropped — and
	// the producer must never wait on it (MaxStall stays 0).
	j := testJob(HubConfig{RingSize: 8, SubscriberBuffer: 1})
	sub := j.Subscribe(context.Background(), SubscribeOptions{Live: true, Policy: DropResync})
	const gens = 200
	for g := 0; g < gens; g++ {
		j.emit(genEvent(0, g))
	}
	j.finish(nil, nil)

	events := drainSub(t, sub) // drain asserts monotonic Seq across resyncs
	if len(events) == 0 || events[len(events)-1].Kind != KindDone {
		t.Fatalf("lapped live viewer ended without done (%d events)", len(events))
	}
	if len(events) >= gens+1 {
		t.Errorf("lapped viewer received all %d events: never resynced?", len(events))
	}
	if sub.Resyncs() == 0 {
		t.Error("lapped viewer reports 0 resyncs")
	}
	if sub.Dropped() == 0 {
		t.Error("lapped viewer reports 0 dropped events")
	}
	if err := sub.Err(); err != nil {
		t.Errorf("resynced viewer ended with err %v", err)
	}
	stats := j.StreamStats()
	if stats.MaxStall != 0 {
		t.Errorf("producer stalled %v on a DropResync-only hub", stats.MaxStall)
	}
	if stats.Resyncs == 0 || stats.Evictions != 0 {
		t.Errorf("stats %+v, want resyncs > 0 and no evictions", stats)
	}
}

func TestHubSlowArchivalSubscriberEvicted(t *testing.T) {
	// A BlockWithDeadline subscriber that stops draining: the producer
	// waits at most BlockDeadline for it, then evicts it with
	// ErrSlowSubscriber and moves on — it is never blocked indefinitely.
	const deadline = 50 * time.Millisecond
	j := testJob(HubConfig{RingSize: 8, SubscriberBuffer: 2, BlockDeadline: deadline})
	sub := j.Subscribe(context.Background(), SubscribeOptions{Policy: BlockWithDeadline})

	start := time.Now()
	const gens = 40 // well past ring + buffer: guarantees a lap
	for g := 0; g < gens; g++ {
		j.emit(genEvent(0, g))
	}
	j.finish(nil, nil)
	elapsed := time.Since(start)

	// The producer side: exactly one bounded stall, then free flow.
	if elapsed > deadline+5*time.Second {
		t.Fatalf("producer blocked %v emitting past a dead subscriber", elapsed)
	}
	stats := j.StreamStats()
	if stats.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", stats.Evictions)
	}
	if stats.MaxStall < deadline/2 || stats.MaxStall > deadline+5*time.Second {
		t.Errorf("MaxStall = %v, want ~%v", stats.MaxStall, deadline)
	}

	// The subscriber side: channel closes after the undrained buffer, and
	// Err explains the eviction.
	events := drainSub(t, sub)
	if len(events) == 0 {
		t.Error("evicted subscriber lost its buffered events")
	}
	if err := sub.Err(); err != ErrSlowSubscriber {
		t.Errorf("Err() = %v, want ErrSlowSubscriber", err)
	}
}

func TestHubEvictSlowNeverWaits(t *testing.T) {
	j := testJob(HubConfig{RingSize: 8, SubscriberBuffer: 2, BlockDeadline: time.Minute})
	sub := j.Subscribe(context.Background(), SubscribeOptions{Policy: EvictSlow})
	for g := 0; g < 40; g++ {
		j.emit(genEvent(0, g))
	}
	j.finish(nil, nil)

	if stats := j.StreamStats(); stats.MaxStall != 0 || stats.Evictions != 1 {
		t.Errorf("stats %+v, want immediate eviction with zero stall", stats)
	}
	drainSub(t, sub)
	if err := sub.Err(); err != ErrSlowSubscriber {
		t.Errorf("Err() = %v, want ErrSlowSubscriber", err)
	}
}

func TestHubSubscriberDetachOnContextCancel(t *testing.T) {
	j := testJob(HubConfig{})
	j.emit(genEvent(0, 0))
	ctx, cancel := context.WithCancel(context.Background())
	sub := j.Subscribe(ctx, SubscribeOptions{})
	if e := <-sub.C; e.Seq != 0 {
		t.Fatalf("first event %+v", e)
	}
	cancel()
	for range sub.C {
	}
	if err := sub.Err(); err != context.Canceled {
		t.Errorf("Err() = %v, want context.Canceled", err)
	}
	// The job is unaffected: emit still works and the stats show the
	// subscriber gone.
	j.emit(genEvent(0, 1))
	j.finish(nil, nil)
	if stats := j.StreamStats(); stats.Subscribers != 0 {
		t.Errorf("detached subscriber still attached: %+v", stats)
	}
}

func TestHubConcurrentSubscribeUnsubscribeEvict(t *testing.T) {
	// Race-detector stress (the CI race job runs this package with
	// -race): one producer on a tiny ring, churning subscribers of every
	// policy — some draining, some abandoned mid-stream, some too slow to
	// live — plus concurrent stats/snapshot readers.
	j := testJob(HubConfig{RingSize: 8, SubscriberBuffer: 2, BlockDeadline: time.Millisecond})
	const gens = 300
	go func() {
		for g := 0; g < gens; g++ {
			j.emit(genEvent(g%3, g))
		}
		j.finish(nil, nil)
	}()

	policies := []Backpressure{BlockWithDeadline, DropResync, EvictSlow}
	done := make(chan struct{})
	for w := 0; w < 12; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 30; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				sub := j.Subscribe(ctx, SubscribeOptions{
					Live:   i%2 == 0,
					Policy: policies[(w+i)%len(policies)],
				})
				reads := 0
				for range sub.C {
					if reads++; i%3 == 0 && reads > w {
						cancel() // abandon mid-stream
					}
				}
				cancel()
				_ = sub.Err() // exercised for the race detector, any outcome is legal
			}
		}(w)
	}
	go func() {
		defer func() { done <- struct{}{} }()
		for j.State() != JobDone {
			j.StreamStats()
			j.Snapshot()
			j.EventCount()
		}
	}()
	for i := 0; i < 13; i++ {
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatal("stress workers did not converge")
		}
	}
	if stats := j.StreamStats(); stats.Subscribers != 0 || stats.Emitted != gens+1 {
		t.Errorf("post-stress stats %+v", stats)
	}
}

// TestFrameCache pins the shared frame cache's contract: encodings are
// byte-identical to a plain marshal, repeat deliveries of one event share
// the cached bytes, a lapped ring slot never serves the previous
// occupant's frame, and — the emit-path guarantee — a hub nobody streams
// never materializes a cache entry at all.
func TestFrameCache(t *testing.T) {
	j := testJob(HubConfig{RingSize: 4})
	for i := 0; i < 4; i++ {
		j.emit(genEvent(0, i))
	}

	// Emit alone must not touch the cache (framesOn stays false): a job
	// without streaming viewers pays nothing for the cache's existence.
	j.hub.mu.Lock()
	if j.hub.framesOn {
		t.Error("framesOn set before any frame() call")
	}
	for i, b := range j.hub.frames {
		if b != nil {
			t.Errorf("frame slot %d materialized with no subscriber", i)
		}
	}
	j.hub.mu.Unlock()

	events := j.Snapshot()
	e := events[len(events)-1]
	want, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := j.Frame(e)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(want) {
		t.Fatalf("frame %s, marshal %s", b1, want)
	}
	b2, err := j.Frame(e)
	if err != nil {
		t.Fatal(err)
	}
	if &b1[0] != &b2[0] {
		t.Error("second delivery re-encoded instead of sharing the cached frame")
	}

	// Lap the slot: four more events overwrite the whole ring. The old
	// event's frame must not be served for the new occupant, and the
	// lapped event itself still encodes correctly via the fallback.
	for i := 4; i < 8; i++ {
		j.emit(genEvent(0, i))
	}
	fresh := j.Snapshot()[len(j.Snapshot())-1]
	fb, err := j.Frame(fresh)
	if err != nil {
		t.Fatal(err)
	}
	fwant, _ := json.Marshal(fresh)
	if string(fb) != string(fwant) {
		t.Fatalf("post-lap frame %s, want %s", fb, fwant)
	}
	ob, err := j.Frame(e) // lapped out of the ring: plain-marshal fallback
	if err != nil {
		t.Fatal(err)
	}
	if string(ob) != string(want) {
		t.Fatalf("lapped-event frame %s, want %s", ob, want)
	}
	j.finish(nil, nil)
}
