package adhocga

import (
	"context"
	"fmt"

	"adhocga/internal/league"
)

// LeagueJobSpec runs a coevolution league over the session's champion
// archive: the selected champions (plus, optionally, the scripted
// baseline seats) meet in a round-robin of tournament matches. Result
// type: *LeagueTable. Events: the terminal KindDone only — a league is a
// bounded batch of matches, reported whole.
//
// The session must have a champion archive attached
// (WithChampionArchive); champions get into it by running jobs with
// checkpoints enabled (scenario "checkpoints" field, or engine
// CheckpointInterval).
type LeagueJobSpec struct {
	// ChampionIDs selects archived champions by ID; empty seats the whole
	// archive sorted by ID (a stable order independent of archival order).
	ChampionIDs []string `json:"champions,omitempty"`
	// IncludeBaselines adds the scripted seats: all-forward,
	// never-forward, and the paper's reciprocal winner.
	IncludeBaselines bool `json:"baselines,omitempty"`
	// Engine knobs, zero meaning the league defaults (10 per side, 2
	// matches per pair, 100 rounds, SP paths, paper game rules).
	PerSide        int    `json:"per_side,omitempty"`
	CSN            int    `json:"csn,omitempty"`
	MatchesPerPair int    `json:"matches_per_pair,omitempty"`
	Rounds         int    `json:"rounds,omitempty"`
	PathMode       string `json:"path_mode,omitempty"` // "SP" (default) or "LP"
	// Seed is the league's root seed (0 = the session default seed).
	Seed        uint64 `json:"seed,omitempty"`
	Parallelism int    `json:"parallelism,omitempty"`
}

// Kind returns "league".
func (LeagueJobSpec) Kind() string { return "league" }

func (sp LeagueJobSpec) run(ctx context.Context, s *Session, _ func(Event)) (any, error) {
	arch := s.champions
	if arch == nil {
		return nil, fmt.Errorf("adhocga: league job needs a champion archive — build the session with WithChampionArchive")
	}
	champs, err := arch.Select(sp.ChampionIDs)
	if err != nil {
		return nil, err
	}
	seats := make([]league.Seat, 0, len(champs)+3)
	for _, c := range champs {
		seat, err := league.ChampionSeat(c)
		if err != nil {
			return nil, err
		}
		seats = append(seats, seat)
	}
	if sp.IncludeBaselines {
		seats = append(seats, league.BaselineSeats()...)
	}
	var mode PathMode
	switch sp.PathMode {
	case "", "SP", "sp":
		// League default (withDefaults resolves to SP).
	case "LP", "lp":
		mode = LongerPaths()
	default:
		return nil, fmt.Errorf("adhocga: league job: unknown path mode %q (want SP or LP)", sp.PathMode)
	}
	seed := sp.Seed
	if seed == 0 {
		seed = s.seed
	}
	cfg := league.Config{
		Seats:          seats,
		PerSide:        sp.PerSide,
		CSN:            sp.CSN,
		MatchesPerPair: sp.MatchesPerPair,
		Rounds:         sp.Rounds,
		Mode:           mode,
		Seed:           seed,
		Parallelism:    sp.Parallelism,
	}
	// One pool slot for the whole league; its matches fan out over the
	// league's own bounded workers (the islands tradeoff: transient,
	// wall-clock-only oversubscription, results unaffected).
	return runPooled(ctx, s, func() (any, error) {
		return league.RunContext(ctx, cfg)
	})
}

// RunLeague runs a coevolution league on the session and waits for the
// table.
func (s *Session) RunLeague(ctx context.Context, spec LeagueJobSpec) (*LeagueTable, error) {
	res, err := s.submitAndWait(ctx, spec)
	out, _ := res.(*LeagueTable)
	return out, err
}
