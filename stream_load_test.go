package adhocga

// Load proof for the streaming hub (ISSUE: the tentpole acceptance
// criterion): thousands of concurrent live subscribers on one running
// job, with flat per-subscriber memory, a producer that never stalls past
// its deadline, and no meaningful effect on the job's wall-clock. The
// bounds are deliberately loose — CI shares one core — and the measured
// numbers are logged so the trajectory is visible in test output.

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"
)

const loadSubscribers = 5000

// loadEvolveConfig is a cheap-but-real GA workload: a couple of seconds
// of generations on one core, emitting one event per generation.
func loadEvolveConfig(seed uint64) EvolutionConfig {
	cfg := DefaultEvolutionConfig(PaperEnvironments()[:1], ShorterPaths(), seed)
	cfg.PopulationSize = 20
	cfg.Eval.TournamentSize = 10
	cfg.Eval.Tournament.Rounds = 10
	cfg.Generations = 3000
	return cfg
}

func runEvolveWall(t *testing.T, s *Session, attach func(*Job)) time.Duration {
	t.Helper()
	start := time.Now()
	job, err := s.Submit(context.Background(), EvolveSpec{Config: loadEvolveConfig(11)})
	if err != nil {
		t.Fatal(err)
	}
	if attach != nil {
		attach(job)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	return time.Since(start)
}

func TestStreamLoadThousandsOfSubscribers(t *testing.T) {
	if testing.Short() {
		t.Skip("load test: skipped in -short mode")
	}
	s := NewSession(WithPoolSize(1))
	defer s.Close()

	// Warm the engine pool, then time the identical workload bare.
	runEvolveWall(t, s, nil)
	bare := runEvolveWall(t, s, nil)

	// The loaded run: the same workload with thousands of live viewers
	// attached the moment the job exists. Every subscriber validates its
	// own stream (monotonic Seq, terminal done) and reports back.
	type outcome struct {
		events, resyncs int
		err             error
		ok              bool
	}
	results := make([]outcome, loadSubscribers)
	var wg sync.WaitGroup
	var loadedJob *Job
	loaded := runEvolveWall(t, s, func(job *Job) {
		loadedJob = job
		wg.Add(loadSubscribers)
		for i := 0; i < loadSubscribers; i++ {
			go func(i int) {
				defer wg.Done()
				sub := job.Subscribe(context.Background(), SubscribeOptions{
					Live: true, Policy: DropResync, Buffer: 16,
				})
				o := outcome{ok: true}
				last := -1
				for e := range sub.C {
					if e.Seq <= last {
						o.ok = false
					}
					last = e.Seq
					o.events++
					if o.events == 1 && i == 0 {
						// One subscriber spot-checks attachment mid-run.
						if job.StreamStats().Subscribers == 0 {
							o.ok = false
						}
					}
				}
				o.resyncs = sub.Resyncs()
				o.err = sub.Err()
				results[i] = o
			}(i)
		}
	})
	wg.Wait()
	stats := loadedJob.StreamStats()

	delivered, resyncs := 0, 0
	for i, o := range results {
		if !o.ok {
			t.Fatalf("subscriber %d saw a non-monotonic stream", i)
		}
		if o.err != nil {
			t.Fatalf("subscriber %d ended with %v", i, o.err)
		}
		if o.events == 0 {
			t.Fatalf("subscriber %d received no events (not even done)", i)
		}
		delivered += o.events
		resyncs += o.resyncs
	}
	t.Logf("load: %d subscribers, %d events emitted, %d delivered (mean %.1f/sub), %d resyncs",
		loadSubscribers, stats.Emitted, delivered, float64(delivered)/loadSubscribers, resyncs)
	t.Logf("wall: bare %v, loaded %v (ratio %.2f)", bare, loaded, float64(loaded)/float64(bare))

	// Producer isolation: live viewers are DropResync, so no append ever
	// waited on them.
	if stats.MaxStall != 0 {
		t.Errorf("producer stalled %v with only DropResync subscribers attached", stats.MaxStall)
	}
	if stats.Evictions != 0 {
		t.Errorf("%d live viewers were evicted; DropResync must resync instead", stats.Evictions)
	}
	if stats.Subscribers != 0 {
		t.Errorf("%d subscribers still attached after the terminal event", stats.Subscribers)
	}
	// Wall-clock: generous — the subscribers burn real CPU on the same
	// single core, but the job must not be serialized behind them.
	if limit := 6*bare + 10*time.Second; loaded > limit {
		t.Errorf("loaded run took %v, limit %v (bare %v): fan-out is stalling the producer", loaded, limit, bare)
	}
}

func TestStreamSubscriberMemoryFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("load test: skipped in -short mode")
	}
	// Attach thousands of idle subscribers to a quiet hub and measure the
	// marginal footprint: heap (channel buffer, bookkeeping) plus
	// goroutine stacks (one pump each). The bound is loose; the point is
	// flatness — cost per subscriber independent of job length, which the
	// ring guarantees by construction.
	j := testJob(HubConfig{})
	readMem := func() (heap, stack uint64) {
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return m.HeapAlloc, m.StackInuse
	}
	heap0, stack0 := readMem()
	subs := make([]*Subscription, loadSubscribers)
	for i := range subs {
		subs[i] = j.Subscribe(context.Background(), SubscribeOptions{
			Live: true, Policy: DropResync, Buffer: 16,
		})
	}
	heap1, stack1 := readMem()
	perSub := (heap1 - heap0 + stack1 - stack0) / loadSubscribers
	t.Logf("memory: %d subscribers, heap +%d KiB, stacks +%d KiB, %d B/subscriber",
		loadSubscribers, (heap1-heap0)>>10, (stack1-stack0)>>10, perSub)
	if perSub > 128<<10 {
		t.Errorf("%d bytes per idle subscriber; want well under 128 KiB", perSub)
	}

	// Emit a long stream: per-subscriber memory must not scale with the
	// event count (the old append-only log grew every subscriber's replay
	// source without bound).
	for g := 0; g < 20000; g++ {
		j.emit(genEvent(0, g))
	}
	heap2, _ := readMem()
	growth := int64(heap2) - int64(heap1)
	t.Logf("after 20000 events: heap %+d KiB total (%+d B/subscriber)",
		growth>>10, growth/loadSubscribers)
	if growth > loadSubscribers*(32<<10) {
		t.Errorf("heap grew %d B during the stream — per-subscriber cost is not flat", growth)
	}

	// Cleanly tear down: finish the job and drain every subscription (the
	// pumps are parked on full buffers and need their consumers back).
	j.finish(nil, nil)
	var wg sync.WaitGroup
	for _, sub := range subs {
		wg.Add(1)
		go func(sub *Subscription) {
			defer wg.Done()
			for range sub.C {
			}
		}(sub)
	}
	wg.Wait()
	if n := j.StreamStats().Subscribers; n > 0 {
		t.Errorf("%d subscribers still attached after finish + drain", n)
	}
}
