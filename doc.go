// Package adhocga reproduces "Evolution of Strategy Driven Behavior in Ad
// Hoc Networks Using a Genetic Algorithm" (Seredynski, Bouvry, Klopotek;
// IPDPS Workshops 2007) as a self-contained Go library.
//
// The paper proposes enforcing cooperation in mobile ad hoc networks by
// having every node run a 13-bit strategy that decides — from the packet
// source's trust level (watchdog-style reputation) and activity level —
// whether to forward or discard each packet. Strategies are evolved by a
// genetic algorithm inside a game-theoretic network model.
//
// The front door is the Session/Job API. A Session (NewSession, with
// functional options for pool size, default scale, seed policy, and a
// concurrent-job bound) owns one shared execution pool for its lifetime;
// every long-running workload is a typed JobSpec submitted with
// Submit(ctx, spec), returning a Job handle that streams a unified Event
// sequence through a bounded fan-out hub (Subscribe with per-subscription
// backpressure policies, Events as the archival shorthand), waits (Wait),
// and cancels cooperatively at generation barriers (Cancel) — so
// uncancelled runs stay bit-identical to the direct engines, and millions
// of users' worth of jobs can multiplex one process without
// oversubscribing it. cmd/adhocd serves exactly this API over HTTP,
// SSE, and WebSocket (internal/service).
//
// The workload kinds (each a JobSpec, each with a Session convenience
// method and a deprecated package-level wrapper over DefaultSession):
//
//   - EvolveSpec / Session.Evolve runs one evolutionary experiment and
//     returns the cooperation trajectory and final strategy population;
//   - IslandsSpec / Session.EvolveIslands runs it on the island-model
//     engine: the population sharded into subpopulations evolved
//     concurrently, with periodic elite migration over a pluggable
//     topology (ring, fully-connected, random-pairs) — deterministic for
//     a fixed seed at any parallelism level, bit-identical to Evolve
//     with one island;
//   - CaseSpec / Session.RunCase reproduces one of the paper's four
//     evaluation cases over repeated replications at a chosen scale;
//   - ScenariosSpec / Session.RunScenarios runs any batch of
//     declarative, JSON-serializable ScenarioSpecs — user-authored or
//     from the built-in registry (ScenarioFamilies: table4, csn-grid,
//     tournament-size, mixed-env, table4-islands, island-topology-sweep,
//     churn-sweep, adversary-grid) — every (scenario × replicate) pair
//     one work unit on the session pool, bit-identical at any
//     parallelism level; a spec's "islands" block routes it through the
//     island-model engine;
//   - SweepSpec / Session.CSNSweep traces evolved cooperation against
//     the selfish-node count;
//   - MixSpec / Session.RunMix plays fixed (non-evolved) behavior mixes
//     through the same network model for baseline comparisons;
//   - IPDRPSpec / Session.RunIPDRP evolves the IPDRP substrate the
//     paper's game generalizes.
//
// The simulation core is dense and allocation-free in steady state:
// NodeIDs are dense integers (enforced by tournament.BuildRegistry), so
// reputation memory is a flat NodeID-indexed slice with cached forwarding
// rates and Fig 1b trust levels maintained lazily on counter change, path
// rating consumes the store's dense []float64 rate view, and the game and
// tournament loops reuse scratch buffers instead of allocating — with
// results bit-identical to the original map-based implementation (golden
// tests pin the exact float bits). See DESIGN.md for the density
// invariant and the README "Performance" section for measurements.
//
// Implementation lives in internal/ packages (rng, bitstring, strategy,
// trust, network, game, tournament, ga, island, metrics, scenario,
// runner, experiment, baselines, ipdrp, service); this package
// re-exports the surface a downstream user needs. See README.md for the scenario API and
// CLI flags, ARCHITECTURE.md for the layer diagram and determinism
// contract, DESIGN.md for the system inventory, and EXPERIMENTS.md for
// paper-vs-measured results.
package adhocga
