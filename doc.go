// Package adhocga reproduces "Evolution of Strategy Driven Behavior in Ad
// Hoc Networks Using a Genetic Algorithm" (Seredynski, Bouvry, Klopotek;
// IPDPS Workshops 2007) as a self-contained Go library.
//
// The paper proposes enforcing cooperation in mobile ad hoc networks by
// having every node run a 13-bit strategy that decides — from the packet
// source's trust level (watchdog-style reputation) and activity level —
// whether to forward or discard each packet. Strategies are evolved by a
// genetic algorithm inside a game-theoretic network model.
//
// The package exposes five workflows:
//
//   - Evolve runs one evolutionary experiment and returns the cooperation
//     trajectory and the final strategy population;
//   - EvolveIslands runs the same experiment on an island-model engine:
//     the population is sharded into subpopulations evolved concurrently,
//     with periodic migration of elite genomes over a pluggable topology
//     (ring, fully-connected, random-pairs) — deterministic for a fixed
//     seed at any parallelism level, and bit-identical to Evolve with one
//     island;
//   - RunCase reproduces one of the paper's four evaluation cases over
//     repeated replications at a chosen scale;
//   - RunScenarios runs any batch of declarative, JSON-serializable
//     ScenarioSpecs — user-authored or from the built-in registry
//     (ScenarioFamilies: table4, csn-grid, tournament-size, mixed-env,
//     table4-islands, island-topology-sweep) — over one shared worker
//     pool that flattens every (scenario × replicate) pair into a single
//     queue, with bit-identical results at any parallelism level; a
//     spec's optional "islands" block routes it through the island-model
//     engine;
//   - RunMix plays fixed (non-evolved) behavior mixes through the same
//     network model for baseline comparisons.
//
// The simulation core is dense and allocation-free in steady state:
// NodeIDs are dense integers (enforced by tournament.BuildRegistry), so
// reputation memory is a flat NodeID-indexed slice with cached forwarding
// rates and Fig 1b trust levels maintained lazily on counter change, path
// rating consumes the store's dense []float64 rate view, and the game and
// tournament loops reuse scratch buffers instead of allocating — with
// results bit-identical to the original map-based implementation (golden
// tests pin the exact float bits). See DESIGN.md for the density
// invariant and the README "Performance" section for measurements.
//
// Implementation lives in internal/ packages (rng, bitstring, strategy,
// trust, network, game, tournament, ga, island, metrics, scenario,
// runner, experiment, baselines, ipdrp); this package re-exports the
// surface a downstream user needs. See README.md for the scenario API and
// CLI flags, ARCHITECTURE.md for the layer diagram and determinism
// contract, DESIGN.md for the system inventory, and EXPERIMENTS.md for
// paper-vs-measured results.
package adhocga
