package adhocga

import (
	"context"
	"testing"
)

// TestSubmitNamedPinsJobID proves the property the durable service tier
// builds on: a job submitted under an explicit ID carries that ID in
// every event, so replaying it in a different session (a restart, a
// verify pass) yields a stream identical to the original.
func TestSubmitNamedPinsJobID(t *testing.T) {
	s := NewSession(WithPoolSize(1))
	defer s.Close()
	spec, err := ScenarioFamilyByName("table4")
	if err != nil {
		t.Fatal(err)
	}
	sc := Scale{Name: "test", Generations: 2, Rounds: 10, Repetitions: 1}
	job := ScenariosSpec{
		Runs:     []ScenarioRun{{Spec: spec.Specs()[0], Seed: 5}},
		Defaults: sc,
		Opts:     RunOptions{Parallelism: 1},
	}

	j, err := s.SubmitNamed(context.Background(), "job-42", job)
	if err != nil {
		t.Fatal(err)
	}
	if j.ID() != "job-42" {
		t.Fatalf("job id %q", j.ID())
	}
	for e := range j.Events() {
		if e.Job != "job-42" {
			t.Fatalf("event carries job %q, want job-42", e.Job)
		}
	}
	if got, ok := s.Job("job-42"); !ok || got != j {
		t.Fatal("named job not reachable by its id")
	}

	// A duplicate name is an error, not a silent replacement.
	if _, err := s.SubmitNamed(context.Background(), "job-42", job); err == nil {
		t.Fatal("duplicate job id accepted")
	}

	// Auto IDs step over taken names instead of colliding.
	s2 := NewSession(WithPoolSize(1))
	defer s2.Close()
	if _, err := s2.SubmitNamed(context.Background(), "job-1", job); err != nil {
		t.Fatal(err)
	}
	auto, err := s2.Submit(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if auto.ID() != "job-2" {
		t.Fatalf("auto id %q collided with the named job-1", auto.ID())
	}
	if _, err := s2.SubmitNamed(context.Background(), "", job); err != nil {
		t.Fatal(err)
	} else if j3, _ := s2.Job("job-3"); j3 == nil {
		t.Fatal("empty name did not fall back to the sequential id")
	}
}
