// Quickstart: evolve forwarding strategies in a small CSN-free ad hoc
// network and watch cooperation emerge (the paper's case 1, scaled down to
// run in a couple of seconds).
package main

import (
	"fmt"
	"log"

	"adhocga"
)

func main() {
	// The paper's parameterization (N=100, T=50, R=300), scaled down to 30
	// generations. TE1 is the CSN-free environment.
	cfg := adhocga.DefaultEvolutionConfig(
		adhocga.PaperEnvironments()[:1], // TE1 only
		adhocga.ShorterPaths(),
		42, // seed: runs are fully reproducible
	)
	cfg.Generations = 30
	cfg.OnGeneration = func(s adhocga.GenerationStats) {
		if s.Generation%5 == 0 {
			fmt.Printf("generation %2d: cooperation %5.1f%%  mean fitness %.2f\n",
				s.Generation, s.Cooperation*100, s.Fitness.MeanFitness)
		}
	}

	res, err := adhocga.Evolve(cfg)
	if err != nil {
		log.Fatal(err)
	}

	final := res.CoopSeries[len(res.CoopSeries)-1]
	fmt.Printf("\nfinal cooperation level: %.1f%% (paper's case 1: ~97%%)\n\n", final*100)

	// Inspect one evolved strategy: groups are trust 0..3 (LO MI HI each)
	// plus the unknown-node bit; 1 = forward.
	s := res.FinalStrategies[0]
	fmt.Printf("an evolved strategy: %s\n", s)
	fmt.Printf("  forwards for a trusted (level 3), low-activity source: %v\n",
		s.Decide(adhocga.Trust3, adhocga.ActivityLow) == adhocga.Forward)
	fmt.Printf("  forwards for an unknown source: %v\n",
		s.DecideUnknown() == adhocga.Forward)
}
