// Islands: shard one evolving population over four concurrently evolving
// islands with elite migration over a ring, and compare the island
// engine's aggregate view with the serial engine on the same budget.
//
// The run is deterministic for the fixed seed at any GOMAXPROCS; one
// island would be bit-identical to adhocga.Evolve.
package main

import (
	"fmt"
	"log"

	"adhocga"
)

func main() {
	// The paper's case 1 environment (TE1, no selfish nodes), with the
	// population doubled to 200 so each of the 4 islands keeps a
	// 50-strategy share — enough to fill a T=50 tournament on its own.
	cfg := adhocga.DefaultEvolutionConfig(
		adhocga.PaperEnvironments()[:1],
		adhocga.ShorterPaths(),
		42,
	)
	cfg.PopulationSize = 200
	cfg.Generations = 30

	res, err := adhocga.EvolveIslands(adhocga.IslandConfig{
		Core:     cfg,
		Count:    4,
		Topology: adhocga.TopologyRing, // also: TopologyFullyConnected, TopologyRandomPairs
		Interval: 5,                    // migrate every 5 generations
		Migrants: 2,                    // 2 elite genomes per ring edge
		Replace:  adhocga.ReplaceWorst, // evict the destination's worst
		OnGeneration: func(s adhocga.IslandGenerationStats) {
			if s.Generation%10 != 0 {
				return
			}
			fmt.Printf("generation %2d: cooperation %5.1f%%  island best fitness:",
				s.Generation, s.Cooperation*100)
			for _, isl := range s.Islands {
				fmt.Printf(" %.2f", isl.BestFitness)
			}
			fmt.Println()
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Aggregate is the run-wide view in the serial engine's shape.
	final := res.Aggregate.CoopSeries[len(res.Aggregate.CoopSeries)-1]
	fmt.Printf("\nfinal cooperation level: %.1f%% (paper's case 1: ~97%%)\n", final*100)
	fmt.Printf("champion strategy: %s (fitness %.2f)\n",
		adhocga.NewStrategy(res.Champion.Genome), res.Champion.Fitness)
	fmt.Printf("migration: %d genomes moved over %d barriers\n",
		res.MigrantsMoved, res.MigrationEvents)

	// Per-island traces show how the subpopulations converged.
	for i, tr := range res.PerIsland {
		last := len(tr.Diversity) - 1
		fmt.Printf("island %d: final best %.2f  diversity %.3f\n",
			i, tr.Best[last], tr.Diversity[last])
	}
}
