// Geometric: run the paper's game over an actual moving topology instead
// of the abstract path model.
//
// The paper replaces radio geometry with random intermediate selection
// ("simulates a network with a high mobility level", §4.1). This example
// builds the thing being simulated — 50 nodes under the random-waypoint
// model with omni-directional radios — discovers real multi-hop routes on
// it, and shows (a) what hop-count distribution the geometry actually
// produces compared to the paper's Table 2, and (b) that the reputation
// mechanism still starves selfish nodes when routes come from real
// connectivity.
//
// This example uses internal packages directly (it is part of the module);
// external users would vendor the mobility package or use the abstract
// model exposed by the public API.
package main

import (
	"fmt"
	"log"
	"slices"

	"adhocga/internal/game"
	"adhocga/internal/mobility"
	"adhocga/internal/network"
	"adhocga/internal/rng"
	"adhocga/internal/strategy"
	"adhocga/internal/tournament"
)

func main() {
	r := rng.New(2007)
	const nNormal, nCSN = 40, 10

	cfg := mobility.DefaultConfig(nNormal + nCSN)
	cfg.Range = 220
	model, err := mobility.NewModel(cfg, r)
	if err != nil {
		log.Fatal(err)
	}
	provider := mobility.NewRouteProvider(model, 0.5)

	// (a) What does the geometry's hop distribution look like?
	ids := make([]network.NodeID, nNormal+nCSN)
	for i := range ids {
		ids[i] = network.NodeID(i)
	}
	hist, misses := provider.HopHistogram(r, ids, 5000)
	fmt.Println("hop-count distribution of discovered routes (50 nodes, 1000x1000 field, range 220):")
	var hops []int
	total := 0
	for h, c := range hist {
		hops = append(hops, h)
		total += c
	}
	slices.Sort(hops)
	for _, h := range hops {
		fmt.Printf("  %2d hops: %5.1f%%\n", h, float64(hist[h])/float64(total)*100)
	}
	fmt.Printf("  unreachable lookups: %.1f%%\n", float64(misses)/float64(total+misses)*100)
	fmt.Println("  (the paper's SP mode assumes 2 hops 20%, 3-4 hops 60%, 5-8 hops 20%)")

	// (b) The game over real routes: trust-threshold normals + CSN.
	normals := make([]*game.Player, nNormal)
	for i := range normals {
		normals[i] = game.NewNormal(network.NodeID(i),
			strategy.ForwardAtOrAbove(strategy.Trust1, strategy.Forward))
	}
	csn := make([]*game.Player, nCSN)
	for i := range csn {
		csn[i] = game.NewSelfish(network.NodeID(nNormal + i))
	}
	all := append(append([]*game.Player{}, normals...), csn...)
	registry := tournament.BuildRegistry(normals, csn)
	tcfg := &tournament.Config{
		Rounds: 300,
		Mode:   network.ShorterPaths(), // ignored by the geometric provider
		Game:   game.DefaultConfig(),
	}
	tournament.Play(all, registry, tcfg, provider, r, nil)

	rate := func(ps []*game.Player) (float64, int) {
		sent, delivered := 0, 0
		for _, p := range ps {
			sent += p.Acct.Sent
			delivered += p.Acct.Delivered
		}
		return float64(delivered) / float64(sent), sent
	}
	nr, nSent := rate(normals)
	cr, cSent := rate(csn)
	fmt.Printf("\ngame over the geometric topology (300 rounds):\n")
	fmt.Printf("  normal nodes:  %5.1f%% of %d packets delivered\n", nr*100, nSent)
	fmt.Printf("  selfish nodes: %5.1f%% of %d packets delivered\n", cr*100, cSent)
	fmt.Println("\nthe mechanism transfers, with one honest caveat the abstract model")
	fmt.Println("hides: whenever two nodes are in direct radio contact (1 hop) no")
	fmt.Println("intermediate can punish anyone, so the denser the network, the")
	fmt.Println("less leverage reputation-based exclusion has over selfish nodes.")
}
