// IPDRP: run the substrate game the paper builds on — the Iterated
// Prisoner's Dilemma under Random Pairing of Namikawa and Ishibuchi
// (CEC'05, the paper's reference [12]).
//
// Every round the whole population is re-paired at random and each player
// remembers only its own previous round. With no way to aim reciprocity at
// the individual who defected on you, defection takes over — exactly the
// problem the paper's reputation system solves for ad hoc networks, where
// "who did what" is observable via the watchdog.
package main

import (
	"fmt"
	"log"

	"adhocga"
)

func main() {
	cfg := adhocga.DefaultIPDRPConfig(2005)
	cfg.Generations = 60
	cfg.OnGeneration = func(gen int, coop float64, _ adhocga.PopulationStats) {
		if gen%10 == 0 {
			fmt.Printf("generation %2d: cooperation rate %5.1f%%\n", gen, coop*100)
		}
	}
	res, err := adhocga.RunIPDRP(cfg)
	if err != nil {
		log.Fatal(err)
	}
	final := res.CoopSeries[len(res.CoopSeries)-1]
	fmt.Printf("\nfinal cooperation rate: %.1f%%\n", final*100)
	fmt.Println("\ndominant strategies (first-move + responses to CC/CD/DC/DD):")
	for i, e := range res.Census() {
		if i == 3 {
			break
		}
		fmt.Printf("  %s  %5.1f%%\n", e.Strategy, e.Fraction*100)
	}
	fmt.Println("\nunder anonymous random pairing, cooperation collapses; the")
	fmt.Println("paper's ad hoc network game adds observable identities (trust),")
	fmt.Println("which is what lets cooperative strategies win there instead.")
}
