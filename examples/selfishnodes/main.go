// Selfish nodes: what happens to a network where 60% of the tournament is
// constantly selfish (the paper's case 2 / TE4)?
//
// The example contrasts two worlds: a fixed population of naive
// unconditional forwarders, which the selfish nodes exploit freely, and an
// evolved population, which learns to starve them while still serving
// each other as well as the selfish crowd allows.
package main

import (
	"fmt"
	"log"

	"adhocga"
)

func main() {
	// World 1: unconditional forwarders + 30 CSN, no evolution.
	naive, err := adhocga.RunMix(adhocga.MixConfig{
		Groups: []adhocga.MixGroup{{Profile: adhocga.ProfileAllCooperate, Count: 20}},
		CSN:    30,
		Rounds: 300,
		Mode:   adhocga.ShorterPaths(),
		Game:   adhocga.DefaultGameConfig(),
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("naive all-forward population with 30 CSN of 50:")
	fmt.Printf("  normal nodes' delivery: %5.1f%%\n", naive.Cooperation*100)
	fmt.Printf("  CSN delivery (free riding): %5.1f%%\n\n", naive.CSNDelivery*100)

	// World 2: the same environment, but strategies evolve (case 2).
	c, err := adhocga.CaseByID(2)
	if err != nil {
		log.Fatal(err)
	}
	sc := adhocga.Scale{Name: "example", Generations: 30, Rounds: 300, Repetitions: 2}
	res, err := adhocga.RunCase(c, sc, adhocga.RunOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("evolved strategies in the same environment (case 2):")
	fmt.Printf("  normal nodes' delivery: %5.1f%%  (paper: ~19%%)\n", res.FinalCoop.Mean*100)
	accCSN, rejNP, _ := res.FromCSN.Fractions()
	fmt.Printf("  CSN forwarding requests accepted: %.1f%% (rejected by normals: %.1f%%)\n",
		accCSN*100, rejNP*100)
	fmt.Println("\nWith 60% of the network refusing to forward anything, even")
	fmt.Println("perfect strategies cannot push delivery high — but the evolved")
	fmt.Println("population reserves its forwarding for nodes that reciprocate.")
}
