// Service: the Session/Job API end to end, twice over — first embedded
// (Submit a job, stream its unified events, cancel a second job
// mid-flight), then over HTTP the way adhocd serves it (submit a
// scenario-spec JSON with POST, follow the NDJSON event stream, read the
// final status).
//
// The same Session backs both halves: the HTTP jobs and the embedded jobs
// share one execution pool, so nothing oversubscribes no matter how many
// jobs are in flight.
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"adhocga"
	"adhocga/internal/service"
)

func main() {
	session := adhocga.NewSession(
		adhocga.WithPoolSize(4),
		adhocga.WithMaxConcurrentJobs(2),
		adhocga.WithDefaultScale(adhocga.ScaleSmoke),
	)
	defer session.Close()

	// --- Embedded: submit, stream, wait. ---
	cfg := adhocga.DefaultEvolutionConfig(adhocga.PaperEnvironments()[:1], adhocga.ShorterPaths(), 1)
	cfg.PopulationSize = 30
	cfg.Eval.TournamentSize = 15
	cfg.Eval.Tournament.Rounds = 50
	cfg.Generations = 10

	job, err := session.Submit(context.Background(), adhocga.EvolveSpec{Config: cfg})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s (%s)\n", job.ID(), job.Kind())
	for e := range job.Events() {
		switch e.Kind {
		case adhocga.KindGeneration:
			if e.Generation.Gen%3 == 0 {
				fmt.Printf("  gen %2d: cooperation %5.1f%%  best fitness %.3f\n",
					e.Generation.Gen, e.Generation.Coop*100, e.Generation.BestFit)
			}
		case adhocga.KindDone:
			fmt.Printf("  terminal state: %s\n", e.Done.State)
		}
	}
	res := job.Result().(*adhocga.EvolutionResult)
	fmt.Printf("final cooperation: %.1f%%\n\n", res.CoopSeries[len(res.CoopSeries)-1]*100)

	// --- Cancellation: a job stops at its next generation barrier. ---
	long := cfg
	long.Generations = 1_000_000
	victim, err := session.Submit(context.Background(), adhocga.EvolveSpec{Config: long})
	if err != nil {
		log.Fatal(err)
	}
	for e := range victim.EventsContext(context.Background()) {
		if e.Kind == adhocga.KindGeneration && e.Generation.Gen == 2 {
			victim.Cancel() // cooperative: next barrier, determinism intact
			break
		}
	}
	victim.Wait(context.Background())
	partial := victim.Result().(*adhocga.EvolutionResult)
	fmt.Printf("cancelled %s after %d of %d generations (state %s)\n\n",
		victim.ID(), len(partial.CoopSeries), long.Generations, victim.State())

	// --- Over HTTP: what `adhocd` serves, here on an httptest listener.
	// With a real daemon this is:  curl -s localhost:8547/v1/jobs -d @spec.json
	srv := httptest.NewServer(service.New(session, service.Options{DefaultScale: adhocga.ScaleSmoke}))
	defer srv.Close()

	spec := `{"scenarios": {"name": "http-demo", "environments": [{"csn": 10}],
	          "population": 30, "tournament_size": 15,
	          "generations": 8, "rounds": 50, "repetitions": 2, "seed": 7},
	          "parallelism": 1}`
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Println("POST /v1/jobs →", resp.Status)

	// Stream the job's NDJSON events (curl -N …/v1/jobs/job-3/events).
	stream, err := http.Get(srv.URL + "/v1/jobs/job-3/events")
	if err != nil {
		log.Fatal(err)
	}
	defer stream.Body.Close()
	lines := 0
	scanner := bufio.NewScanner(stream.Body)
	for scanner.Scan() {
		lines++
		if lines <= 3 {
			fmt.Println("  ", scanner.Text())
		}
	}
	fmt.Printf("streamed %d NDJSON events\n", lines)

	status, err := http.Get(srv.URL + "/v1/jobs/job-3")
	if err != nil {
		log.Fatal(err)
	}
	defer status.Body.Close()
	sc := bufio.NewScanner(status.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, `"state"`) || strings.Contains(line, `"final_coop_mean"`) {
			fmt.Println("  ", strings.TrimSpace(line))
		}
	}
}
