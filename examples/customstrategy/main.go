// Custom strategies: hand-write forwarding strategies in the paper's
// notation and pit them against each other in fixed-population
// tournaments — no evolution, just the game model.
//
// The example measures the classic result that motivates the whole paper:
// unconditional cooperation is exploitable, unconditional defection is
// self-defeating, and trust-conditioned strategies both protect themselves
// and keep the network useful.
package main

import (
	"fmt"
	"log"

	"adhocga"
)

func main() {
	// The paper's own Table 7 winner for case 3, written in its grouped
	// notation: trust0=010, trust1=101, trust2=101, trust3=111, unknown=1.
	table7Winner, err := adhocga.ParseStrategy("010 101 101 111 1")
	if err != nil {
		log.Fatal(err)
	}
	// A hand-written "grudger": forward only for trust ≥ 2, discard
	// unknowns — maximally suspicious.
	grudger, err := adhocga.ParseStrategy("000 000 111 111 0")
	if err != nil {
		log.Fatal(err)
	}

	contenders := []adhocga.Profile{
		{Name: "table-7 winner", Strategy: table7Winner},
		{Name: "grudger", Strategy: grudger},
		adhocga.ProfileAllCooperate,
		adhocga.ProfileAllDefect,
	}

	fmt.Println("four strategies, 10 players each, plus 10 CSN, 300 rounds:")
	groups := make([]adhocga.MixGroup, len(contenders))
	for i, p := range contenders {
		groups[i] = adhocga.MixGroup{Profile: p, Count: 10}
	}
	res, err := adhocga.RunMix(adhocga.MixConfig{
		Groups: groups,
		CSN:    10,
		Rounds: 300,
		Mode:   adhocga.ShorterPaths(),
		Game:   adhocga.DefaultGameConfig(),
		Seed:   99,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-16s %10s %10s %14s\n", "strategy", "delivery", "fitness", "forward share")
	for _, g := range res.Groups {
		fmt.Printf("%-16s %9.1f%% %10.2f %13.1f%%\n",
			g.Name, g.DeliveryRate*100, g.Fitness, g.ForwardShare*100)
	}
	fmt.Printf("\nnetwork-wide cooperation: %.1f%%   CSN delivery: %.1f%%\n",
		res.Cooperation*100, res.CSNDelivery*100)
	fmt.Println("\nthe trust-conditioned strategies collect the best fitness: they")
	fmt.Println("save energy on low-trust sources like the defectors do, while")
	fmt.Println("keeping enough reputation to get their own packets through;")
	fmt.Println("pure defectors starve and pure cooperators subsidize everyone.")
}
