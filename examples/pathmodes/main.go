// Path modes: reproduce the paper's core comparison between shorter-path
// and longer-path regimes (evaluation cases 3 vs 4, Tables 5 and 9).
//
// Longer routes make it harder to avoid selfish nodes — a single CSN
// anywhere on the route kills the packet — so evolved populations become
// measurably less forgiving toward low-trust sources.
package main

import (
	"fmt"
	"log"

	"adhocga"
)

func main() {
	sc := adhocga.Scale{Name: "example", Generations: 30, Rounds: 300, Repetitions: 2}

	results := map[int]*adhocga.CaseResult{}
	for _, id := range []int{3, 4} {
		c, err := adhocga.CaseByID(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("running %s...\n", c.Name)
		res, err := adhocga.RunCase(c, sc, adhocga.RunOptions{Seed: uint64(10 + id)})
		if err != nil {
			log.Fatal(err)
		}
		results[id] = res
	}

	fmt.Println("\nper-environment cooperation (paper Table 5):")
	fmt.Println("env   shorter paths   longer paths    paper SP   paper LP")
	paperSP := []float64{99, 66, 28, 19}
	paperLP := []float64{99, 41, 7, 5}
	for ei := 0; ei < 4; ei++ {
		fmt.Printf("TE%d   %8.1f%%      %8.1f%%      %5.0f%%     %5.0f%%\n",
			ei+1,
			results[3].PerEnv[ei].Cooperation.Mean*100,
			results[4].PerEnv[ei].Cooperation.Mean*100,
			paperSP[ei], paperLP[ei])
	}

	fmt.Println("\nhow forgiving are the evolved strategies toward barely-trusted")
	fmt.Println("(trust 1) sources? fraction of populations forwarding per pattern:")
	for _, id := range []int{3, 4} {
		subs := results[id].Census.SubStrategies(adhocga.Trust1, 0.03)
		fmt.Printf("  case %d:", id)
		for _, e := range subs {
			fmt.Printf("  %s=%.0f%%", e.Pattern, e.Fraction*100)
		}
		fmt.Println()
	}
	fmt.Println("\n(the paper's Table 9 finds 000 — never cooperate at trust 1 —")
	fmt.Println("dominating the longer-path populations at 53%)")
}
