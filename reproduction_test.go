package adhocga

// Reproduction assertions: the paper's headline shapes must hold at
// reduced scale on fixed seeds. These are the repository's regression
// net — if a refactor silently changes the model's dynamics, these fail
// before any benchmark is read.

import (
	"testing"

	"adhocga/internal/experiment"
)

// repro runs one case at a small-but-sufficient scale (paper rounds, 25
// generations, 2 replicates).
func repro(t *testing.T, id int, seed uint64) *experiment.CaseResult {
	t.Helper()
	c, err := experiment.CaseByID(id)
	if err != nil {
		t.Fatal(err)
	}
	sc := experiment.Scale{Name: "repro", Generations: 25, Rounds: 300, Repetitions: 2}
	res, err := experiment.RunCase(c, sc, experiment.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestReproCase1CooperationEmerges(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := repro(t, 1, 1)
	// Paper: ~97%. Anything below 90% at generation 25 means the
	// dynamics are broken, not merely unconverged.
	if res.FinalCoop.Mean < 0.9 {
		t.Errorf("case 1 cooperation %.3f, want ≥ 0.9 (paper: 0.97)", res.FinalCoop.Mean)
	}
	// Evolution must have improved on the random start.
	if res.CoopMean[0] > 0.5 {
		t.Errorf("generation 0 cooperation %.3f suspiciously high", res.CoopMean[0])
	}
}

func TestReproCase2SelfishMajorityCapsCooperation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := repro(t, 2, 2)
	// Paper: ~19%. Accept a band around it; the ceiling matters most —
	// 30 CSN of 50 participants cannot support high delivery.
	if res.FinalCoop.Mean < 0.10 || res.FinalCoop.Mean > 0.30 {
		t.Errorf("case 2 cooperation %.3f, want ≈ 0.19 (paper)", res.FinalCoop.Mean)
	}
}

func TestReproCase3Table5Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := repro(t, 3, 3)
	// The Table 5 ordering must hold: TE1 > TE2 > TE3 > TE4.
	for ei := 1; ei < 4; ei++ {
		if res.PerEnv[ei].Cooperation.Mean >= res.PerEnv[ei-1].Cooperation.Mean {
			t.Errorf("cooperation not decreasing with CSN count: TE%d %.3f ≥ TE%d %.3f",
				ei+1, res.PerEnv[ei].Cooperation.Mean, ei, res.PerEnv[ei-1].Cooperation.Mean)
		}
	}
	// TE1 ≈ 99%, TE4 ≈ 19-20%.
	if res.PerEnv[0].Cooperation.Mean < 0.9 {
		t.Errorf("TE1 cooperation %.3f, want ≥ 0.9", res.PerEnv[0].Cooperation.Mean)
	}
	if res.PerEnv[3].Cooperation.Mean > 0.35 {
		t.Errorf("TE4 cooperation %.3f, want ≈ 0.2", res.PerEnv[3].Cooperation.Mean)
	}
	// CSN-free paths track cooperation levels (Table 5's near-identity).
	for ei := 1; ei < 4; ei++ {
		diff := res.PerEnv[ei].CSNFree.Mean - res.PerEnv[ei].Cooperation.Mean
		if diff < -0.05 || diff > 0.15 {
			t.Errorf("TE%d CSN-free %.3f vs coop %.3f: should nearly coincide",
				ei+1, res.PerEnv[ei].CSNFree.Mean, res.PerEnv[ei].Cooperation.Mean)
		}
	}
}

func TestReproCase4LongerPathsHurt(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res3 := repro(t, 3, 4)
	res4 := repro(t, 4, 4)
	// The paper's central case-3-vs-4 comparison: longer paths lower
	// cooperation in every CSN environment (TE2-4).
	for ei := 1; ei < 4; ei++ {
		if res4.PerEnv[ei].Cooperation.Mean >= res3.PerEnv[ei].Cooperation.Mean {
			t.Errorf("TE%d: longer paths should hurt: LP %.3f ≥ SP %.3f",
				ei+1, res4.PerEnv[ei].Cooperation.Mean, res3.PerEnv[ei].Cooperation.Mean)
		}
	}
	// And CSN become harder to avoid (fewer CSN-free paths).
	for ei := 1; ei < 4; ei++ {
		if res4.PerEnv[ei].CSNFree.Mean >= res3.PerEnv[ei].CSNFree.Mean {
			t.Errorf("TE%d: CSN-free paths should shrink under LP: %.3f ≥ %.3f",
				ei+1, res4.PerEnv[ei].CSNFree.Mean, res3.PerEnv[ei].CSNFree.Mean)
		}
	}
}

func TestReproTable6RequestShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := repro(t, 3, 5)
	accN, rejNPn, _ := res.FromNormal.Fractions()
	accC, rejNPc, _ := res.FromCSN.Fractions()
	// Paper Table 6: ~77% of requests from normal players accepted, only
	// ~4% of requests from CSN; normal players reject CSN requests en
	// masse but almost never each other's.
	if accN < 0.6 {
		t.Errorf("normal-request acceptance %.3f, want ≥ 0.6 (paper 0.77)", accN)
	}
	if accC > 0.15 {
		t.Errorf("CSN-request acceptance %.3f, want ≤ 0.15 (paper 0.04)", accC)
	}
	if rejNPc < rejNPn {
		t.Errorf("normals should reject CSN (%.3f) more than each other (%.3f)", rejNPc, rejNPn)
	}
}

func TestReproTables7to9StrategyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := repro(t, 3, 6)
	// §6.3: the last bit is forward — "new nodes can easily join".
	if got := res.Census.UnknownForwardFraction(); got < 0.8 {
		t.Errorf("unknown-forward share %.3f, want ≥ 0.8", got)
	}
	// Trust 3's dominant sub-strategy is "111 — always forward" (99%).
	subs := res.Census.SubStrategies(Trust3, 0)
	if len(subs) == 0 || subs[0].Pattern != "111" || subs[0].Fraction < 0.8 {
		t.Errorf("trust-3 sub-strategies = %+v, want 111 dominating", subs)
	}
	// Trust 0 must be far less forgiving than trust 3.
	coop0 := 0.0
	for _, e := range res.Census.SubStrategies(Trust0, 0) {
		ones := 0
		for _, ch := range e.Pattern {
			if ch == '1' {
				ones++
			}
		}
		coop0 += e.Fraction * float64(ones) / 3
	}
	if coop0 > 0.5 {
		t.Errorf("trust-0 forwarding share %.3f, want well below trust 3", coop0)
	}
}
