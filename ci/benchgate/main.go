// Command benchgate compares a go-test benchmark run against a committed
// baseline and fails when a gated benchmark regresses beyond tolerance.
//
// It consumes the plain text format `go test -bench` emits (one
// "BenchmarkName-N  iters  value unit  value unit ..." line per
// measurement, possibly several per name when -count > 1) and compares
// the per-name median ns/op. Medians, not means: benchmark noise on
// shared CI runners is one-sided (interruptions only slow a run down),
// so the median of several counts is the robust center.
//
// Usage:
//
//	benchgate -baseline ci/bench_baseline.txt -current bench.txt \
//	          -match 'BenchmarkPlay$|BenchmarkEvaluate$' -tolerance 0.05
//	benchgate -baseline ci/bench_baseline.txt -current bench.txt -update
//
// Only names matching -match that appear in the baseline gate the build;
// benchmarks present in just one file are reported but never fatal for
// the current side (a renamed benchmark must ship a refreshed baseline
// in the same commit — -update rewrites the baseline from the current
// run). The tolerance is a ratio: 0.05 fails when current median ns/op
// exceeds the baseline median by more than 5%.
//
// The committed baseline records one machine's numbers; refresh it with
// -update whenever the benchmark hardware changes, and compare apples to
// apples by regenerating baseline and current on the same host when
// gating locally.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// sample is one parsed benchmark line: the benchmark's full name
// (including any -N GOMAXPROCS suffix) and its ns/op reading.
type sample struct {
	name string
	nsOp float64
}

// parseBench extracts every benchmark measurement line from go-test
// output. Lines that do not carry an ns/op pair (metrics-only lines,
// PASS/ok trailers, log noise) are skipped.
func parseBench(text string) []sample {
	var out []sample
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// fields[1] is the iteration count; value/unit pairs follow.
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			out = append(out, sample{name: fields[0], nsOp: v})
			break
		}
	}
	return out
}

// medians collapses samples to one median ns/op per benchmark name.
func medians(samples []sample) map[string]float64 {
	byName := map[string][]float64{}
	for _, s := range samples {
		byName[s.name] = append(byName[s.name], s.nsOp)
	}
	out := make(map[string]float64, len(byName))
	for name, vs := range byName {
		sort.Float64s(vs)
		n := len(vs)
		if n%2 == 1 {
			out[name] = vs[n/2]
		} else {
			out[name] = (vs[n/2-1] + vs[n/2]) / 2
		}
	}
	return out
}

// verdict is one gated comparison row.
type verdict struct {
	name     string
	base     float64
	current  float64
	ratio    float64
	regessed bool
}

// gate compares current against baseline for every baseline name
// matching the pattern, failing rows whose ratio exceeds 1+tolerance.
// Gated names missing from the current run fail too: a gate that
// silently skips vanished benchmarks is no gate.
func gate(baseline, current map[string]float64, match *regexp.Regexp, tolerance float64) ([]verdict, bool) {
	var names []string
	for name := range baseline {
		if match.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var rows []verdict
	failed := false
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			rows = append(rows, verdict{name: name, base: base, current: -1, regessed: true})
			failed = true
			continue
		}
		ratio := cur / base
		bad := ratio > 1+tolerance
		rows = append(rows, verdict{name: name, base: base, current: cur, ratio: ratio, regessed: bad})
		if bad {
			failed = true
		}
	}
	return rows, failed
}

func main() {
	baselinePath := flag.String("baseline", "", "committed baseline bench output (go-bench text)")
	currentPath := flag.String("current", "", "bench output of the run under test")
	matchExpr := flag.String("match", ".", "regexp selecting the gated benchmark names")
	tolerance := flag.Float64("tolerance", 0.05, "allowed ns/op regression ratio before failing")
	update := flag.Bool("update", false, "rewrite the baseline file from the current run and exit")
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -current are required")
		os.Exit(2)
	}

	curText, err := os.ReadFile(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if *update {
		if err := os.WriteFile(*baselinePath, curText, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: baseline %s updated from %s\n", *baselinePath, *currentPath)
		return
	}
	baseText, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	match, err := regexp.Compile(*matchExpr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad -match: %v\n", err)
		os.Exit(2)
	}

	rows, failed := gate(medians(parseBench(string(baseText))), medians(parseBench(string(curText))), match, *tolerance)
	if len(rows) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no baseline benchmarks match %q\n", *matchExpr)
		os.Exit(2)
	}
	fmt.Printf("%-60s %14s %14s %8s\n", "benchmark", "base ns/op", "current ns/op", "ratio")
	for _, r := range rows {
		switch {
		case r.current < 0:
			fmt.Printf("%-60s %14.1f %14s %8s  FAIL (missing from current run)\n", r.name, r.base, "-", "-")
		case r.regessed:
			fmt.Printf("%-60s %14.1f %14.1f %8.3f  FAIL (> %.0f%% regression)\n", r.name, r.base, r.current, r.ratio, *tolerance*100)
		default:
			fmt.Printf("%-60s %14.1f %14.1f %8.3f  ok\n", r.name, r.base, r.current, r.ratio)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchgate: FAIL — hot-path benchmark regression over tolerance")
		os.Exit(1)
	}
	fmt.Println("benchgate: PASS")
}
