package main

import (
	"regexp"
	"testing"
)

const benchText = `
goos: linux
goarch: amd64
BenchmarkPlay-4             	 4512345	       265.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkPlay-4             	 4498211	       271.9 ns/op	       0 B/op	       0 allocs/op
BenchmarkPlay-4             	 4601002	       268.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkEvaluate-4         	      78	  15234491 ns/op	       319.0 ns/game
BenchmarkIslandEvolve/islands=4-4 	       5	 212345678 ns/op	         4.000 cores
BenchmarkMetricOnly-4       	     100	        12.5 games/op
PASS
ok  	adhocga	12.3s
`

func TestParseBench(t *testing.T) {
	samples := parseBench(benchText)
	if len(samples) != 5 {
		t.Fatalf("parsed %d samples, want 5: %v", len(samples), samples)
	}
	if samples[0].name != "BenchmarkPlay-4" || samples[0].nsOp != 265.1 {
		t.Errorf("first sample = %+v", samples[0])
	}
	if samples[4].name != "BenchmarkIslandEvolve/islands=4-4" {
		t.Errorf("sub-benchmark name lost: %+v", samples[4])
	}
}

func TestMediansOddAndEven(t *testing.T) {
	m := medians(parseBench(benchText))
	if m["BenchmarkPlay-4"] != 268.0 {
		t.Errorf("median of three Play runs = %v, want 268.0", m["BenchmarkPlay-4"])
	}
	m2 := medians([]sample{{"B", 100}, {"B", 200}})
	if m2["B"] != 150 {
		t.Errorf("even median = %v, want 150", m2["B"])
	}
}

func TestGateVerdicts(t *testing.T) {
	baseline := map[string]float64{
		"BenchmarkPlay-4":     100,
		"BenchmarkEvaluate-4": 1000,
		"BenchmarkOther-4":    50,
	}
	match := regexp.MustCompile(`BenchmarkPlay|BenchmarkEvaluate`)

	// Within tolerance passes; ungated names are ignored even if slower.
	rows, failed := gate(baseline, map[string]float64{
		"BenchmarkPlay-4":     104,
		"BenchmarkEvaluate-4": 900,
		"BenchmarkOther-4":    5000,
	}, match, 0.05)
	if failed {
		t.Errorf("within-tolerance run failed: %+v", rows)
	}
	if len(rows) != 2 {
		t.Errorf("gated %d rows, want 2", len(rows))
	}

	// Over tolerance fails.
	_, failed = gate(baseline, map[string]float64{
		"BenchmarkPlay-4":     106,
		"BenchmarkEvaluate-4": 900,
	}, match, 0.05)
	if !failed {
		t.Error("6% regression passed a 5% gate")
	}

	// A gated benchmark missing from the current run fails.
	rows, failed = gate(baseline, map[string]float64{
		"BenchmarkPlay-4": 100,
	}, match, 0.05)
	if !failed {
		t.Error("missing gated benchmark passed")
	}
	for _, r := range rows {
		if r.name == "BenchmarkEvaluate-4" && r.current >= 0 {
			t.Errorf("missing benchmark row = %+v, want current < 0", r)
		}
	}
}
