#!/usr/bin/env bash
# Runs `go test -cover` over the whole module and enforces the per-package
# statement-coverage floors of ci/coverage_floors.txt. The merged coverage
# profile is written to the path given as $1 (default coverage.out) so CI
# can upload it as an artifact.
#
# Usage: ci/check_coverage.sh [profile-path]
set -euo pipefail

profile="${1:-coverage.out}"
floors="$(dirname "$0")/coverage_floors.txt"

# Capture-then-echo so the floor loop can parse the output, but never
# swallow diagnostics: on a test failure, print what go test said before
# bailing (set -e would otherwise abort between the capture and the echo).
if ! out="$(go test -cover -coverprofile="$profile" ./...)"; then
    echo "$out"
    echo "coverage: go test failed" >&2
    exit 1
fi
echo "$out"

fail=0
while read -r pkg floor; do
    [ -z "${pkg:-}" ] && continue
    case "$pkg" in \#*) continue ;; esac
    line="$(echo "$out" | awk -v pkg="$pkg" '$1 == "ok" && $2 == pkg')"
    if [ -z "$line" ]; then
        echo "coverage: package $pkg missing from test output" >&2
        fail=1
        continue
    fi
    pct="$(echo "$line" | grep -oE '[0-9]+(\.[0-9]+)?% of statements' | head -1 | cut -d% -f1)"
    if [ -z "$pct" ]; then
        echo "coverage: no percentage reported for $pkg" >&2
        fail=1
        continue
    fi
    if ! awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p >= f) }'; then
        echo "coverage: $pkg at $pct% is below its floor of $floor%" >&2
        fail=1
    fi
done <"$floors"

if [ "$fail" -ne 0 ]; then
    echo "coverage floors violated (see ci/coverage_floors.txt)" >&2
    exit 1
fi
echo "all coverage floors hold"
