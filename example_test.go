package adhocga_test

import (
	"context"
	"fmt"

	"adhocga"
)

// Parse a strategy in the paper's notation and query its decisions.
func ExampleParseStrategy() {
	s, err := adhocga.ParseStrategy("010 101 101 111 1")
	if err != nil {
		panic(err)
	}
	fmt.Println("trusted, low-activity source:", s.Decide(adhocga.Trust3, adhocga.ActivityLow))
	fmt.Println("untrusted, low-activity source:", s.Decide(adhocga.Trust0, adhocga.ActivityLow))
	fmt.Println("unknown source:", s.DecideUnknown())
	// Output:
	// trusted, low-activity source: F
	// untrusted, low-activity source: D
	// unknown source: F
}

// Run a fixed-population tournament: 20 unconditional cooperators against
// 5 constantly selfish nodes.
func ExampleRunMix() {
	res, err := adhocga.RunMix(adhocga.MixConfig{
		Groups: []adhocga.MixGroup{{Profile: adhocga.ProfileAllCooperate, Count: 20}},
		CSN:    5,
		Rounds: 50,
		Mode:   adhocga.ShorterPaths(),
		Game:   adhocga.DefaultGameConfig(),
		Seed:   1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("groups:", len(res.Groups))
	fmt.Println("cooperation in range:", res.Cooperation > 0 && res.Cooperation <= 1)
	// Output:
	// groups: 1
	// cooperation in range: true
}

// Evolve strategies in a small CSN-free network for a few generations.
func ExampleEvolve() {
	cfg := adhocga.DefaultEvolutionConfig(adhocga.PaperEnvironments()[:1], adhocga.ShorterPaths(), 42)
	cfg.PopulationSize = 20
	cfg.Eval.TournamentSize = 10
	cfg.Eval.Tournament.Rounds = 10
	cfg.Generations = 3
	res, err := adhocga.Evolve(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("generations recorded:", len(res.CoopSeries))
	fmt.Println("final strategies:", len(res.FinalStrategies))
	// Output:
	// generations recorded: 3
	// final strategies: 20
}

// Submit an evolution as a job on a Session and stream its unified event
// feed — the context-aware form of ExampleEvolve.
func ExampleSession_Submit() {
	session := adhocga.NewSession(adhocga.WithPoolSize(2))
	defer session.Close()

	cfg := adhocga.DefaultEvolutionConfig(adhocga.PaperEnvironments()[:1], adhocga.ShorterPaths(), 42)
	cfg.PopulationSize = 20
	cfg.Eval.TournamentSize = 10
	cfg.Eval.Tournament.Rounds = 10
	cfg.Generations = 3

	job, err := session.Submit(context.Background(), adhocga.EvolveSpec{Config: cfg})
	if err != nil {
		panic(err)
	}
	generations := 0
	for e := range job.Events() {
		if e.Kind == adhocga.KindGeneration {
			generations++
		}
	}
	if err := job.Wait(context.Background()); err != nil {
		panic(err)
	}
	res := job.Result().(*adhocga.EvolutionResult)
	fmt.Println("job:", job.ID(), "state:", job.State())
	fmt.Println("generation events:", generations)
	fmt.Println("final strategies:", len(res.FinalStrategies))
	// Output:
	// job: job-1 state: done
	// generation events: 3
	// final strategies: 20
}
