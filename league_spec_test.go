package adhocga

import (
	"context"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// harvestSession runs a tiny checkpointed evolve job on a session wired
// to a fresh in-memory archive and returns both.
func harvestSession(t *testing.T) (*Session, *ChampionArchive) {
	t.Helper()
	arch := NewChampionArchive()
	s := NewSession(WithPoolSize(2), WithChampionArchive(arch))
	cfg := smallConfig(6, 11)
	cfg.CheckpointInterval = 2
	j, err := s.Submit(context.Background(), EvolveSpec{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	return s, arch
}

// TestCheckpointEventsArchiveChampions pins the harvest pipeline: a
// checkpointed evolve job emits KindCheckpoint events, and the session
// archives each one as a champion whose genome matches the event.
func TestCheckpointEventsArchiveChampions(t *testing.T) {
	arch := NewChampionArchive()
	s := NewSession(WithPoolSize(2), WithChampionArchive(arch))
	defer s.Close()
	cfg := smallConfig(6, 11)
	cfg.CheckpointInterval = 2
	j, err := s.Submit(context.Background(), EvolveSpec{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	var checkpoints []*CheckpointEvent
	for _, e := range drain(t, j) {
		if e.Kind == KindCheckpoint {
			checkpoints = append(checkpoints, e.Checkpoint)
		}
	}
	// Generations 0..5 at interval 2: gens 0, 2, 4, plus the forced final
	// generation 5.
	if len(checkpoints) != 4 {
		t.Fatalf("%d checkpoint events, want 4", len(checkpoints))
	}
	if arch.Len() != len(checkpoints) {
		t.Fatalf("archive has %d champions, want %d", arch.Len(), len(checkpoints))
	}
	for _, cp := range checkpoints {
		id := j.ID() + "/evolve/r0/g" + strconv.Itoa(cp.Gen)
		c, ok := arch.Get(id)
		if !ok {
			t.Fatalf("no champion %q for checkpoint event (archive: %v)", id, championIDs(arch))
		}
		if c.Genome != cp.Genome || c.Fitness != cp.Fitness || c.Seed != cp.Seed {
			t.Fatalf("champion %q diverges from its event:\nchampion %+v\nevent    %+v", id, c, cp)
		}
		if c.Category == "" {
			t.Fatalf("champion %q has no classification metadata", id)
		}
	}
}

// TestRunLeagueOverHarvestedChampions runs the whole tentpole loop in
// process: evolve with checkpoints, seat the harvested champions plus the
// baselines, and check the table — twice, byte-identically.
func TestRunLeagueOverHarvestedChampions(t *testing.T) {
	s, arch := harvestSession(t)
	defer s.Close()
	if arch.Len() == 0 {
		t.Fatal("harvest archived no champions")
	}
	spec := LeagueJobSpec{
		IncludeBaselines: true,
		PerSide:          2,
		MatchesPerPair:   1,
		Rounds:           10,
		Seed:             7,
	}
	table, err := s.RunLeague(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Seats) != arch.Len()+3 {
		t.Fatalf("%d seats, want %d champions + 3 baselines", len(table.Seats), arch.Len())
	}
	if table.Winner() == "" {
		t.Fatal("empty winner")
	}
	var champs, baselines int
	for _, st := range table.Standings {
		switch st.Kind {
		case "champion":
			champs++
		case "baseline":
			baselines++
		}
	}
	if champs != arch.Len() || baselines != 3 {
		t.Fatalf("standings have %d champions / %d baselines, want %d / 3", champs, baselines, arch.Len())
	}

	again, err := s.RunLeague(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(table)
	b2, _ := json.Marshal(again)
	if string(b1) != string(b2) {
		t.Fatalf("league not deterministic across runs:\n%s\n%s", b1, b2)
	}
}

func TestRunLeagueChampionSelection(t *testing.T) {
	s, arch := harvestSession(t)
	defer s.Close()
	all := arch.List()
	if len(all) < 2 {
		t.Fatalf("need ≥2 champions, have %d", len(all))
	}
	table, err := s.RunLeague(context.Background(), LeagueJobSpec{
		ChampionIDs:    []string{all[0].ID, all[1].ID},
		PerSide:        2,
		MatchesPerPair: 1,
		Rounds:         10,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Seats) != 2 {
		t.Fatalf("%d seats, want the 2 selected champions", len(table.Seats))
	}
	for _, name := range table.Seats {
		if !strings.HasPrefix(name, "champion/") {
			t.Fatalf("unexpected seat %q", name)
		}
	}

	if _, err := s.RunLeague(context.Background(), LeagueJobSpec{
		ChampionIDs: []string{"no/such/champion"}, IncludeBaselines: true,
	}); err == nil {
		t.Fatal("league accepted unknown champion ID")
	}
	if _, err := s.RunLeague(context.Background(), LeagueJobSpec{
		IncludeBaselines: true, PathMode: "XP",
	}); err == nil {
		t.Fatal("league accepted unknown path mode")
	}
}

func TestRunLeagueWithoutArchive(t *testing.T) {
	s := NewSession()
	defer s.Close()
	if s.Champions() != nil {
		t.Fatal("session without WithChampionArchive reports an archive")
	}
	if _, err := s.RunLeague(context.Background(), LeagueJobSpec{IncludeBaselines: true}); err == nil {
		t.Fatal("league ran without a champion archive")
	}
}

// TestScenarioCheckpointsFlowThroughBatch runs a scenario batch with the
// declarative "checkpoints" field and checks champions arrive with
// scenario provenance in their IDs.
func TestScenarioCheckpointsFlowThroughBatch(t *testing.T) {
	arch := NewChampionArchive()
	s := NewSession(WithPoolSize(1), WithChampionArchive(arch))
	defer s.Close()
	fam, err := ScenarioFamilyByName("table4")
	if err != nil {
		t.Fatal(err)
	}
	spec := fam.Specs()[0]
	spec.Checkpoints = 2
	j, err := s.Submit(context.Background(), ScenariosSpec{
		Runs:     []ScenarioRun{{Spec: spec, Seed: 5}},
		Defaults: Scale{Name: "test", Generations: 4, Rounds: 10, Repetitions: 2},
		Opts:     RunOptions{Parallelism: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// 2 replicates × checkpoints at gens 0, 2, 3.
	if arch.Len() != 6 {
		t.Fatalf("archive has %d champions, want 6: %v", arch.Len(), championIDs(arch))
	}
	for _, c := range arch.List() {
		if c.Job != j.ID() || c.Scenario != spec.Name {
			t.Fatalf("champion %q has provenance job=%q scenario=%q, want %q/%q", c.ID, c.Job, c.Scenario, j.ID(), spec.Name)
		}
	}
}

func championIDs(a *ChampionArchive) []string {
	var out []string
	for _, c := range a.List() {
		out = append(out, c.ID)
	}
	return out
}
