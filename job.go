package adhocga

import (
	"context"
	"errors"
	"log/slog"
	"sync"
)

// JobState is a job's lifecycle phase.
type JobState string

// Job lifecycle states. A job is terminal exactly when its state is
// JobDone, JobFailed, or JobCancelled.
const (
	// JobQueued: submitted, waiting for a session job slot.
	JobQueued JobState = "queued"
	// JobRunning: holding a job slot, work in progress.
	JobRunning JobState = "running"
	// JobDone: finished successfully; Result holds the outcome.
	JobDone JobState = "done"
	// JobFailed: finished with a non-cancellation error.
	JobFailed JobState = "failed"
	// JobCancelled: stopped cooperatively at a generation barrier (or
	// while still queued) by context cancellation.
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// Job is the handle to one submitted workload: inspect its state, stream
// its events, wait for or cancel it. All methods are safe for concurrent
// use.
//
// Events flow through the job's streaming hub (see hub.go): a bounded ring
// buffer plus a compacted per-stream snapshot, fanned out to any number of
// subscribers with per-subscriber backpressure. A job's event memory is
// bounded by its HubConfig regardless of how many generations it runs or
// how many clients watch it.
type Job struct {
	id   string
	kind string

	hub    *hub
	cancel context.CancelFunc
	done   chan struct{}

	mu     sync.Mutex
	state  JobState
	result any
	err    error
}

func newJob(id, kind string, cfg HubConfig, logger *slog.Logger) *Job {
	return &Job{
		id:    id,
		kind:  kind,
		hub:   newHub(id, cfg, logger),
		done:  make(chan struct{}),
		state: JobQueued,
	}
}

// ID returns the session-unique job identifier ("job-1", "job-2", … in
// submission order — deterministic for a fresh session).
func (j *Job) ID() string { return j.id }

// Kind returns the job kind tag ("evolve", "scenarios", …), as reported by
// the submitted JobSpec.
func (j *Job) Kind() string { return j.kind }

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the job's terminal error: nil while running or when done,
// an error wrapping context.Canceled when cancelled, the failure
// otherwise.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Result returns the job's outcome value once terminal, nil before. The
// dynamic type depends on the spec kind (see each JobSpec). A cancelled
// engine-level job (EvolveSpec, IslandsSpec, IPDRPSpec) still carries its
// partial result here; batch jobs cancelled mid-flight carry nil — use
// the event stream (PartialSeries) for their partial view.
func (j *Job) Result() any {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// EventCount returns the total number of events emitted so far (not all of
// them are necessarily still retained — see Snapshot).
func (j *Job) EventCount() int { return j.hub.totalEvents() }

// Snapshot returns a copy of every event still retained, in sequence
// order: for jobs within the hub's ring capacity this is the full history;
// longer jobs keep the compacted snapshot of the evicted range (the latest
// event per stream) followed by the ring tail.
func (j *Job) Snapshot() []Event { return j.hub.retained() }

// StreamStats returns the job hub's observability counters: events
// emitted/retained/overwritten, attached subscribers, backpressure
// resyncs and evictions, and the longest producer stall.
func (j *Job) StreamStats() StreamStats { return j.hub.stats() }

// Frame returns the JSON encoding of one of this job's events, served
// from the hub's shared frame cache: the first caller for a given event
// marshals it once, every other subscriber fanning the same event out
// (WebSocket, SSE, NDJSON) reuses the cached bytes. Identical to
// json.Marshal(e) byte for byte; callers must not mutate the result.
func (j *Job) Frame(e Event) ([]byte, error) { return j.hub.frame(e) }

// Subscribe attaches one subscription to the job's event stream with
// explicit replay and backpressure control (see SubscribeOptions and
// Backpressure). The subscription's channel closes after the terminal
// KindDone event, when ctx is cancelled, or when backpressure evicts the
// subscriber; Subscription.Err distinguishes the three. The job itself is
// never affected by its subscribers beyond the bounded BlockWithDeadline
// wait.
func (j *Job) Subscribe(ctx context.Context, opts SubscribeOptions) *Subscription {
	if opts.From < 0 {
		opts.From = 0
	}
	return j.hub.subscribe(ctx, opts)
}

// Events streams the job's events from the oldest retained one — for jobs
// within the ring capacity that is the very first, so a subscriber
// attaching after the job started (or even after it finished) replays the
// full history, then follows live. The subscription uses the archival
// BlockWithDeadline policy: an actively-draining consumer sees every event
// with no gaps, and only a consumer that stops draining for longer than
// the hub's BlockDeadline is evicted (the channel closes early in that
// case). The channel is closed after the terminal KindDone event. Use
// EventsContext to detach early.
func (j *Job) Events() <-chan Event {
	return j.EventsContext(context.Background())
}

// EventsContext is Events with a detach control: when ctx is cancelled the
// subscription stops and the channel is closed without draining the
// remaining history. The job itself is unaffected.
func (j *Job) EventsContext(ctx context.Context) <-chan Event {
	return j.Subscribe(ctx, SubscribeOptions{Policy: BlockWithDeadline}).C
}

// Wait blocks until the job reaches a terminal state or ctx is done. It
// returns the job's terminal error (nil for success) — or ctx.Err() when
// the wait itself was abandoned first; the job keeps running in that
// case.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return j.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Cancel requests cooperative cancellation: the job stops at its next
// generation barrier (immediately when still queued). Cancel returns
// without waiting; use Wait to observe the terminal state. Cancelling a
// terminal job is a no-op.
func (j *Job) Cancel() { j.cancel() }

// emit appends one event to the hub, stamping Seq and Job, and wakes all
// subscribers. No-op after the job turned terminal (the KindDone event is
// the last one, emitted by finish itself).
func (j *Job) emit(e Event) { j.hub.append(e, false) }

// setRunning moves a queued job to running.
func (j *Job) setRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == JobQueued {
		j.state = JobRunning
	}
}

// finish records the terminal outcome, emits the KindDone event (sealing
// the hub), and releases waiters. The terminal state is derived from err:
// nil → done, cancellation → cancelled, anything else → failed.
func (j *Job) finish(result any, err error) {
	j.mu.Lock()
	state := JobDone
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		state = JobCancelled
	default:
		state = JobFailed
	}
	j.result = result
	j.err = err
	j.state = state
	j.mu.Unlock()
	ev := Event{Kind: KindDone, Done: &DoneEvent{State: state}}
	if err != nil {
		ev.Done.Error = err.Error()
	}
	j.hub.append(ev, true)
	j.cancel() // release the job context's resources
	close(j.done)
}
