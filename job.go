package adhocga

import (
	"context"
	"errors"
	"sync"
)

// JobState is a job's lifecycle phase.
type JobState string

// Job lifecycle states. A job is terminal exactly when its state is
// JobDone, JobFailed, or JobCancelled.
const (
	// JobQueued: submitted, waiting for a session job slot.
	JobQueued JobState = "queued"
	// JobRunning: holding a job slot, work in progress.
	JobRunning JobState = "running"
	// JobDone: finished successfully; Result holds the outcome.
	JobDone JobState = "done"
	// JobFailed: finished with a non-cancellation error.
	JobFailed JobState = "failed"
	// JobCancelled: stopped cooperatively at a generation barrier (or
	// while still queued) by context cancellation.
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// Job is the handle to one submitted workload: inspect its state, stream
// its events, wait for or cancel it. All methods are safe for concurrent
// use.
type Job struct {
	id   string
	kind string

	cancel context.CancelFunc
	done   chan struct{}

	mu     sync.Mutex
	log    []Event       // append-only event history
	notify chan struct{} // closed and replaced on every append/state change
	state  JobState
	result any
	err    error
}

func newJob(id, kind string) *Job {
	return &Job{
		id:     id,
		kind:   kind,
		done:   make(chan struct{}),
		notify: make(chan struct{}),
		state:  JobQueued,
	}
}

// ID returns the session-unique job identifier ("job-1", "job-2", … in
// submission order — deterministic for a fresh session).
func (j *Job) ID() string { return j.id }

// Kind returns the job kind tag ("evolve", "scenarios", …), as reported by
// the submitted JobSpec.
func (j *Job) Kind() string { return j.kind }

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the job's terminal error: nil while running or when done,
// an error wrapping context.Canceled when cancelled, the failure
// otherwise.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Result returns the job's outcome value once terminal, nil before. The
// dynamic type depends on the spec kind (see each JobSpec). A cancelled
// engine-level job (EvolveSpec, IslandsSpec, IPDRPSpec) still carries its
// partial result here; batch jobs cancelled mid-flight carry nil — use
// the event stream (PartialSeries) for their partial view.
func (j *Job) Result() any {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// EventCount returns the number of events emitted so far.
func (j *Job) EventCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.log)
}

// Snapshot returns a copy of the full event history emitted so far.
func (j *Job) Snapshot() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Event(nil), j.log...)
}

// Events streams the job's events from the very first — a subscriber
// attaching after the job started (or even after it finished) replays the
// full history, then follows live. The channel is closed after the
// terminal KindDone event. Every call returns an independent subscription;
// a slow consumer delays only its own stream, never the job. The consumer
// must drain the channel to completion — use EventsContext to detach
// early.
func (j *Job) Events() <-chan Event {
	return j.EventsContext(context.Background())
}

// EventsContext is Events with a detach control: when ctx is cancelled the
// subscription's goroutine stops and the channel is closed without
// draining the remaining history. The job itself is unaffected.
func (j *Job) EventsContext(ctx context.Context) <-chan Event {
	ch := make(chan Event, 16)
	go func() {
		defer close(ch)
		next := 0
		for {
			j.mu.Lock()
			batch := j.log[next:]
			notify := j.notify
			terminal := j.state.Terminal()
			j.mu.Unlock()
			for _, e := range batch {
				select {
				case ch <- e:
				case <-ctx.Done():
					return
				}
			}
			next += len(batch)
			if terminal && len(batch) == 0 {
				return
			}
			if terminal {
				// Re-check immediately: the terminal event may already be
				// in the log we just drained.
				continue
			}
			select {
			case <-notify:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch
}

// Wait blocks until the job reaches a terminal state or ctx is done. It
// returns the job's terminal error (nil for success) — or ctx.Err() when
// the wait itself was abandoned first; the job keeps running in that
// case.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return j.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Cancel requests cooperative cancellation: the job stops at its next
// generation barrier (immediately when still queued). Cancel returns
// without waiting; use Wait to observe the terminal state. Cancelling a
// terminal job is a no-op.
func (j *Job) Cancel() { j.cancel() }

// emit appends one event to the log, stamping Seq and Job, and wakes all
// subscribers. No-op after the job turned terminal (the KindDone event is
// the last one, emitted by finish itself).
func (j *Job) emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.appendLocked(e)
}

func (j *Job) appendLocked(e Event) {
	e.Seq = len(j.log)
	e.Job = j.id
	j.log = append(j.log, e)
	close(j.notify)
	j.notify = make(chan struct{})
}

// setRunning moves a queued job to running.
func (j *Job) setRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == JobQueued {
		j.state = JobRunning
	}
}

// finish records the terminal outcome, emits the KindDone event, and
// releases waiters. The terminal state is derived from err: nil → done,
// cancellation → cancelled, anything else → failed.
func (j *Job) finish(result any, err error) {
	j.mu.Lock()
	state := JobDone
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		state = JobCancelled
	default:
		state = JobFailed
	}
	j.result = result
	j.err = err
	j.state = state
	ev := Event{Kind: KindDone, Done: &DoneEvent{State: state}}
	if err != nil {
		ev.Done.Error = err.Error()
	}
	j.appendLocked(ev)
	j.mu.Unlock()
	j.cancel() // release the job context's resources
	close(j.done)
}
